#include "bench/bench_common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

#include "common/log.hh"

namespace zcomp::bench {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

const std::vector<StudyModel> &
studyModels()
{
    // Batches/images scaled from the paper's 64 (ResNet 128) / 4 so
    // that early-layer feature maps keep their cache-residency
    // regimes on a single host (see EXPERIMENTS.md).
    static const std::vector<StudyModel> models = {
        {ModelId::AlexNet, 16, 2, 0, 1.0},
        {ModelId::GoogLeNet, 4, 1, 0, 1.0},
        {ModelId::InceptionResnetV2, 4, 1, 0, 0.5},
        {ModelId::Resnet32, 64, 4, 0, 1.0},
        {ModelId::Vgg16, 3, 1, 0, 1.0},
    };
    return models;
}

PreparedNet
prepareNet(const StudyModel &m, bool training, uint64_t seed)
{
    PreparedNet p;
    ArchConfig cfg;
    p.ctx = std::make_unique<ExecContext>(cfg);

    ModelOptions opt;
    opt.batch = training ? m.trainBatch : m.inferBatch;
    opt.imageSize = m.imageSize;
    opt.widthScale = m.widthScale;
    p.net = buildModel(m.id, p.ctx->vs(), opt);
    p.net->build(training, seed);

    Rng rng(seed + 17);
    p.net->fillSyntheticInput(rng);
    p.net->forward();
    if (training) {
        std::vector<int> labels(
            static_cast<size_t>(opt.batch));
        for (size_t i = 0; i < labels.size(); i++)
            labels[i] = static_cast<int>(rng.below(
                static_cast<uint64_t>(opt.classes)));
        p.net->lossAndBackward(labels);
    }
    return p;
}

namespace {

/**
 * One (model, mode) study cell: build + functionally execute the
 * network (the preparation tensors are then shared read-only by the
 * policy runs), and time all three policies back to back. Each cell
 * owns its ExecContext and MemoryHierarchy, so cells are mutually
 * independent; the policies within a cell stay sequential because
 * they share the cell's simulated address space.
 */
StudyRow
runStudyCell(const StudyModel &m, bool training)
{
    const char *mode = training ? "training" : "inference";
    inform("preparing %s (%s)...", modelName(m.id), mode);

    Clock::time_point t0 = Clock::now();
    PreparedNet p = prepareNet(m, training);
    StudyRow row;
    row.model = modelName(m.id);
    row.training = training;
    row.prepMillis = msSince(t0);

    NetworkSim sim(*p.ctx, *p.net);
    for (int pol = 0; pol < numIoPolicies; pol++) {
        NetworkSimConfig cfg;
        cfg.policy = static_cast<IoPolicy>(pol);
        Clock::time_point t1 = Clock::now();
        row.results[pol] = sim.run(cfg);
        row.simMillis[pol] = msSince(t1);
    }
    inform("%s (%s) row done: prep %.0f ms, sim %.0f/%.0f/%.0f ms",
           modelName(m.id), mode, row.prepMillis, row.simMillis[0],
           row.simMillis[1], row.simMillis[2]);
    return row;
}

} // namespace

std::vector<StudyRow>
runStudy(const StudyOptions &opt)
{
    const std::vector<StudyModel> &models =
        opt.models.empty() ? studyModels() : opt.models;
    ThreadPool &pool = opt.pool ? *opt.pool : ThreadPool::global();

    struct Cell
    {
        StudyModel m;
        bool training;
    };
    std::vector<Cell> cells;
    for (const StudyModel &m : models) {
        for (int mode = 0; mode < 2; mode++) {
            bool training = mode == 0;
            if (training && opt.inferenceOnly)
                continue;
            if (!training && opt.trainingOnly)
                continue;
            cells.push_back({m, training});
        }
    }

    // Fan the cells out; collecting the futures in submission order
    // keeps the row order (and hence the figure output) identical to
    // the sequential loop. With a 1-job pool, submit() runs inline
    // and this *is* the sequential loop.
    std::vector<std::future<StudyRow>> futs;
    futs.reserve(cells.size());
    for (const Cell &cell : cells) {
        StudyModel m = cell.m;
        bool training = cell.training;
        futs.push_back(pool.submit(
            [m, training] { return runStudyCell(m, training); }));
    }
    std::vector<StudyRow> rows;
    rows.reserve(futs.size());
    for (std::future<StudyRow> &f : futs)
        rows.push_back(f.get());
    return rows;
}

std::vector<StudyRow>
runFullStudy(bool training_only, bool inference_only)
{
    StudyOptions opt;
    opt.trainingOnly = training_only;
    opt.inferenceOnly = inference_only;
    return runStudy(opt);
}

void
parseBenchArgs(int argc, char **argv, const std::string &title)
{
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            std::printf("usage: %s [--jobs N]\n\n"
                        "  --jobs N, -j N  run N study cells in "
                        "parallel (default: ZCOMP_JOBS\n"
                        "                  or the hardware thread "
                        "count; 1 = sequential)\n",
                        argv[0]);
            std::exit(0);
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            fatal_if(i + 1 >= argc, "%s needs a value", arg);
            value = argv[++i];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else {
            fatal("unknown argument '%s' (try --help)", arg);
        }
        char *rest = nullptr;
        long jobs = std::strtol(value, &rest, 10);
        fatal_if(*value == '\0' || (rest && *rest != '\0') ||
                     jobs < 1 || jobs > 1024,
                 "bad --jobs value '%s' (want an integer in "
                 "[1, 1024])", value);
        ThreadPool::setGlobalJobs(static_cast<int>(jobs));
    }
    printBanner(title);
}

void
printBanner(const std::string &title)
{
    ArchConfig cfg;
    std::printf("=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("machine: %s\n", cfg.summary().c_str());
    std::printf("=============================================="
                "==============================\n");
}

} // namespace zcomp::bench
