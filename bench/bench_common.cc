#include "bench/bench_common.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "cachecomp/scheme.hh"
#include "common/annotate.hh"
#include "common/error.hh"
#include "common/fault.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/report.hh"
#include "common/result_cache.hh"
#include "common/stats.hh"
#include "common/sweep_supervisor.hh"
#include "common/trace_writer.hh"

namespace zcomp::bench {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

const std::vector<StudyPolicy> &
studyPolicies()
{
    // Derived once from the scheme registry: the registered schemes
    // that have a NetworkSim IoPolicy dispatch, in registration order
    // (uncompressed, avx512-comp, zcomp - the historical sequence, so
    // row indices, report keys and figure output are unchanged).
    // Cache-model-only schemes (limitcc, twotagcc, ebpc, zvc) have no
    // timing-model dispatch and are skipped here; they enter through
    // bench_fig15_cache_comp instead.
    static const std::vector<StudyPolicy> policies = [] {
        std::vector<StudyPolicy> v;
        for (const CompressionScheme *s : allSchemes()) {
            IoPolicy pol;
            if (ioPolicyFromName(s->name(), pol))
                v.push_back({s->name(), pol});
        }
        panic_if(v.size() != static_cast<size_t>(numIoPolicies),
                 "scheme registry covers %zu of %d I/O policies",
                 v.size(), numIoPolicies);
        return v;
    }();
    return policies;
}

const NetworkSimResult &
StudyRow::result(const std::string &policy) const
{
    const std::vector<StudyPolicy> &pols = studyPolicies();
    for (size_t i = 0; i < pols.size(); i++) {
        if (pols[i].name == policy) {
            panic_if(i >= results.size(),
                     "study row for %s carries no '%s' result "
                     "(failed cell?)",
                     model.c_str(), policy.c_str());
            return results[i];
        }
    }
    panic("'%s' is not a study policy", policy.c_str());
}

const std::vector<StudyModel> &
studyModels()
{
    // Batches/images scaled from the paper's 64 (ResNet 128) / 4 so
    // that early-layer feature maps keep their cache-residency
    // regimes on a single host (see EXPERIMENTS.md).
    static const std::vector<StudyModel> models = {
        {ModelId::AlexNet, 16, 2, 0, 1.0},
        {ModelId::GoogLeNet, 4, 1, 0, 1.0},
        {ModelId::InceptionResnetV2, 4, 1, 0, 0.5},
        {ModelId::Resnet32, 64, 4, 0, 1.0},
        {ModelId::Vgg16, 3, 1, 0, 1.0},
    };
    return models;
}

PreparedNet
prepareNet(const StudyModel &m, bool training, uint64_t seed,
           BumpArena *arena)
{
    PreparedNet p;
    ArchConfig cfg;
    p.ctx = arena ? std::make_unique<ExecContext>(cfg, arena)
                  : std::make_unique<ExecContext>(cfg);

    ModelOptions opt;
    opt.batch = training ? m.trainBatch : m.inferBatch;
    opt.imageSize = m.imageSize;
    opt.widthScale = m.widthScale;
    p.net = buildModel(m.id, p.ctx->vs(), opt);
    p.net->build(training, seed);

    Rng rng(seed + 17);
    p.net->fillSyntheticInput(rng);
    p.net->forward();
    if (training) {
        std::vector<int> labels(
            static_cast<size_t>(opt.batch));
        for (size_t i = 0; i < labels.size(); i++)
            labels[i] = static_cast<int>(rng.below(
                static_cast<uint64_t>(opt.classes)));
        p.net->lossAndBackward(labels);
    }
    return p;
}

namespace {

/** Thrown when a cell attempt overruns its --cell-timeout budget. */
struct CellTimeout : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Per-attempt deadline, checked cooperatively at the cell's phase
 * boundaries (after the fault hook, after preparation, after each
 * policy run). Cooperative checkpoints keep the timeout thread-free -
 * no detached watchdogs to leak past a sanitizer run - at the cost of
 * granularity: an attempt is only declared over time once the phase
 * it is inside finishes.
 */
class Deadline
{
  public:
    Deadline(double seconds, const std::string &what)
        : enabled_(seconds > 0), what_(what)
    {
        if (enabled_)
            at_ = Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds));
    }

    void check() const
    {
        if (enabled_ && Clock::now() > at_)
            throw CellTimeout(what_ + " timed out (--cell-timeout)");
    }

  private:
    bool enabled_;
    std::string what_;
    Clock::time_point at_;
};

/**
 * One (model, mode) study cell: build + functionally execute the
 * network (the preparation tensors are then shared read-only by the
 * policy runs), and time all three policies back to back. Each cell
 * owns its ExecContext and MemoryHierarchy, so cells are mutually
 * independent; the policies within a cell stay sequential because
 * they share the cell's simulated address space.
 */
StudyRow
runStudyCell(const StudyModel &m, bool training, const StudyOptions &opt,
             const StudyHarness &h, int attempt, BumpArena &arena,
             bool want_stats)
{
    const char *mode = training ? "training" : "inference";
    inform("preparing %s (%s)...", modelName(m.id), mode);
    TraceWriter *tw = TraceWriter::global();
    std::string cell =
        std::string(modelName(m.id)) + " (" + mode + ")";
    Deadline deadline(h.cellTimeoutSec, cell);

    if (opt.faultHook)
        opt.faultHook(m, training, attempt);
    deadline.check();

    // Span timestamps are sampled outside the timed windows: nowUs()
    // before Clock::now() on entry, and after msSince() on exit, so
    // --trace never perturbs the prep/sim wall-clock numbers.
    double tus0 = tw ? tw->nowUs() : 0;
    Clock::time_point t0 = Clock::now();
    PreparedNet p = prepareNet(m, training, /*seed=*/1, &arena);
    StudyRow row;
    row.model = modelName(m.id);
    row.training = training;
    row.prepMillis = msSince(t0);
    row.attempts = attempt;
    if (tw)
        tw->hostSpan("prep " + cell, tus0, tw->nowUs());
    deadline.check();

    const std::vector<StudyPolicy> &pols = studyPolicies();
    row.results.resize(pols.size());
    row.simMillis.assign(pols.size(), 0.0);
    NetworkSim sim(*p.ctx, *p.net);
    for (size_t pi = 0; pi < pols.size(); pi++) {
        NetworkSimConfig cfg;
        cfg.policy = pols[pi].policy;
        cfg.traceLabel = cell;
        double tus1 = tw ? tw->nowUs() : 0;
        Clock::time_point t1 = Clock::now();
        row.results[pi] = sim.run(cfg);
        row.simMillis[pi] = msSince(t1);
        if (tw) {
            tw->hostSpan(std::string("sim ") + pols[pi].name + " " +
                             cell,
                         tus1, tw->nowUs());
        }
        deadline.check();
    }

    // Snapshot the cell's full stats tree only when a report wants
    // it. Each policy run resets the counters (coldCaches), so the
    // tree reflects the final (Zcomp) run; the per-policy numbers
    // live in results[] either way. The flag is explicit (not
    // RunReport::global()) because an isolated worker has no report
    // installed but must still produce whatever row shape the
    // parent's cache key promises.
    if (want_stats) {
        StatGroup sg("system");
        p.ctx->sys().dumpStats(sg);
        row.stats = sg.dumpJson();
    }
    std::string sim_ms;
    for (size_t pi = 0; pi < row.simMillis.size(); pi++) {
        sim_ms += pi ? "/" : "";
        sim_ms += format("%.0f", row.simMillis[pi]);
    }
    inform("%s (%s) row done: prep %.0f ms, sim %s ms",
           modelName(m.id), mode, row.prepMillis, sim_ms.c_str());
    return row;
}

/**
 * Fault-isolated wrapper around runStudyCell(): a throwing or timed
 * out attempt is retried up to harness.retries times with doubling
 * backoff, and exhausted attempts come back as a CellStatus::Failed
 * row instead of propagating out of the pool worker.
 */
StudyRow
runStudyCellGuarded(const StudyModel &m, bool training,
                    const StudyOptions &opt, const StudyHarness &h,
                    bool want_stats)
{
    const char *mode = training ? "training" : "inference";
    int max_attempts = 1 + std::max(0, h.retries);
    int attempts_used = max_attempts;
    std::string error = "unknown cell fault";
    // One arena per cell: every attempt's tensors and scratch come
    // from it, and a faulted attempt's memory is reclaimed wholesale
    // by the reset below (chunks and warmed pages are retained).
    BumpArena arena;
    for (int attempt = 1; attempt <= max_attempts; attempt++) {
        if (attempt > 1) {
            arena.reset();
            // Doubling backoff, capped so a long retry chain cannot
            // stall the sweep for minutes.
            int shift = std::min(attempt - 2, 10);
            int wait = std::min(h.backoffMillis << shift, 5000);
            if (wait > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(wait));
        }
        bool aborted = false;
        try {
            return runStudyCell(m, training, opt, h, attempt, arena,
                                want_stats);
        } catch (const CellAbort &e) {
            // Deterministic failure: retrying would reproduce it.
            error = format("aborted: %s", e.what());
            aborted = true;
        } catch (const SimError &e) {
            // DecodeError / FaultInjected: recoverable, worth a retry.
            error = format("%s: %s", e.kind(), e.what());
        } catch (const std::exception &e) {
            error = e.what();
        } catch (...) { // zcomp-lint: allow(catch-swallow)
            // Last resort so one cell can never kill the sweep; the
            // warn() below reports it like every other cell fault.
            error = "non-standard exception";
        }
        warn("%s (%s) attempt %d/%d failed: %s", modelName(m.id),
             mode, attempt, max_attempts, error.c_str());
        if (aborted) {
            attempts_used = attempt;
            break;
        }
    }
    StudyRow row;
    row.model = modelName(m.id);
    row.training = training;
    row.status = CellStatus::Failed;
    row.error = error;
    row.attempts = attempts_used;
    return row;
}

} // namespace

std::string
studyCellKey(const StudyModel &m, bool training, bool want_stats)
{
    Json key = Json::object();
    key["schema"] = studyCellSchemaVersion;
    // Rows simulated under fault injection must never stand in for
    // fault-free ones (or for runs with a different spec).
    key["faultSpec"] = FaultInjector::global().spec();
    key["machine"] = machineToJson(ArchConfig{});
    // The policy set is part of the row layout: a cached row can only
    // stand in for a fresh one when both sweep the same schemes.
    Json policies = Json::array();
    for (const StudyPolicy &sp : studyPolicies())
        policies.push(sp.name);
    key["policies"] = std::move(policies);
    Json &cell = key["cell"];
    cell = Json::object();
    cell["model"] = modelName(m.id);
    cell["trainBatch"] = m.trainBatch;
    cell["inferBatch"] = m.inferBatch;
    cell["imageSize"] = m.imageSize;
    cell["widthScale"] = m.widthScale;
    cell["training"] = training;
    cell["stats"] = want_stats;
    return key.dump();
}

Json
studyRowToJson(const StudyRow &row)
{
    Json j = Json::object();
    j["model"] = row.model;
    j["mode"] = row.training ? "training" : "inference";
    if (row.status == CellStatus::Failed) {
        // Failed rows use a separate compact schema so successful
        // rows keep their exact historical byte layout (the cache
        // byte-identity guarantee rests on that).
        j["failed"] = true;
        j["error"] = row.error;
        j["attempts"] = row.attempts;
        return j;
    }
    j["prepMillis"] = row.prepMillis;
    // Only rows that actually consumed retries carry the field, so
    // fault-free rows keep their exact historical byte layout.
    if (row.attempts > 1)
        j["attempts"] = row.attempts;

    const std::vector<StudyPolicy> &policies = studyPolicies();
    Json &pols = j["policies"];
    pols = Json::object();
    for (size_t pi = 0; pi < policies.size(); pi++) {
        const NetworkSimResult &res = row.results.at(pi);
        Json p = Json::object();
        p["simMillis"] = row.simMillis.at(pi);
        p["total"] = runStatsToJson(res.total);

        Json layers = Json::array();
        for (const LayerPassStats &lp : res.layers) {
            Json l = Json::object();
            l["name"] = lp.name;
            l["backward"] = lp.backward;
            l["stats"] = runStatsToJson(lp.stats);
            layers.push(std::move(l));
        }
        p["layers"] = std::move(layers);
        pols[policies[pi].name] = std::move(p);
    }
    if (!row.stats.isNull())
        j["stats"] = row.stats;
    return j;
}

namespace {

const Json &
rowField(const Json &obj, const char *key)
{
    const Json *p = obj.isObject() ? obj.find(key) : nullptr;
    if (!p)
        throw std::runtime_error(
            format("study row JSON: missing field '%s'", key));
    return *p;
}

} // namespace

StudyRow
studyRowFromJson(const Json &j)
{
    if (!j.isObject())
        throw std::runtime_error("study row JSON: not an object");
    if (const Json *failed = j.find("failed");
        failed && failed->isBool() && failed->asBool())
        throw std::runtime_error("study row JSON: failed row");

    StudyRow row;
    const Json &model = rowField(j, "model");
    if (!model.isString())
        throw std::runtime_error("study row JSON: model not a string");
    row.model = model.asString();

    const Json &mode = rowField(j, "mode");
    if (!mode.isString() || (mode.asString() != "training" &&
                             mode.asString() != "inference"))
        throw std::runtime_error("study row JSON: bad mode");
    row.training = mode.asString() == "training";

    const Json &prep = rowField(j, "prepMillis");
    if (!prep.isNumber())
        throw std::runtime_error(
            "study row JSON: prepMillis not a number");
    row.prepMillis = prep.asDouble();

    if (const Json *attempts = j.find("attempts")) {
        if (!attempts->isNumber())
            throw std::runtime_error(
                "study row JSON: attempts not a number");
        row.attempts = static_cast<int>(attempts->asInt());
    }

    // Policy names are validated here, at parse time, against the
    // scheme registry: every study policy must be present, and no
    // unknown policy entry may ride along (an unrecognized name would
    // otherwise deserialize into a row whose layout no caller
    // expects).
    const std::vector<StudyPolicy> &policies = studyPolicies();
    const Json &pols = rowField(j, "policies");
    if (!pols.isObject() || pols.size() != policies.size())
        throw std::runtime_error(
            "study row JSON: policies do not match the scheme "
            "registry");
    row.results.resize(policies.size());
    row.simMillis.assign(policies.size(), 0.0);
    for (size_t pi = 0; pi < policies.size(); pi++) {
        const Json &p = rowField(pols, policies[pi].name.c_str());
        const Json &sim_ms = rowField(p, "simMillis");
        if (!sim_ms.isNumber())
            throw std::runtime_error(
                "study row JSON: simMillis not a number");
        row.simMillis[pi] = sim_ms.asDouble();
        row.results[pi].total =
            runStatsFromJson(rowField(p, "total"));

        const Json &layers = rowField(p, "layers");
        if (!layers.isArray())
            throw std::runtime_error(
                "study row JSON: layers not an array");
        row.results[pi].layers.reserve(layers.size());
        for (size_t i = 0; i < layers.size(); i++) {
            const Json &l = layers.at(i);
            LayerPassStats lp;
            const Json &name = rowField(l, "name");
            if (!name.isString())
                throw std::runtime_error(
                    "study row JSON: layer name not a string");
            lp.name = name.asString();
            const Json &backward = rowField(l, "backward");
            if (!backward.isBool())
                throw std::runtime_error(
                    "study row JSON: layer backward not a bool");
            lp.backward = backward.asBool();
            lp.stats = runStatsFromJson(rowField(l, "stats"));
            row.results[pi].layers.push_back(std::move(lp));
        }
    }
    if (const Json *stats = j.find("stats"))
        row.stats = *stats;
    return row;
}

StudyHarness &
studyHarness()
{
    static StudyHarness h;
    return h;
}

namespace {

/** One (model, mode) cell reference shared by both execution paths. */
struct CellRef
{
    StudyModel m;
    bool training;
};

/** Schema tag of the hidden --worker-cell spec JSON. */
constexpr const char *workerCellSchema = "zcomp-worker-cell-v1";

/** Serialize a cell into the --worker-cell spec the worker parses.
 *  The full StudyModel rides along (not just an index into
 *  studyModels()) so tests can sweep their own tiny models. */
std::string
workerCellSpec(const StudyModel &m, bool training, bool want_stats)
{
    Json s = Json::object();
    s["schema"] = workerCellSchema;
    Json &model = s["model"];
    model = Json::object();
    model["id"] = static_cast<int64_t>(m.id);
    model["trainBatch"] = m.trainBatch;
    model["inferBatch"] = m.inferBatch;
    model["imageSize"] = m.imageSize;
    model["widthScale"] = m.widthScale;
    s["training"] = training;
    s["wantStats"] = want_stats;
    return s.dump();
}

std::string
cellLabel(const StudyModel &m, bool training)
{
    return std::string(modelName(m.id)) + " (" +
           (training ? "training" : "inference") + ")";
}

/** Decode one worker-reported row (success or typed failure). */
StudyRow
rowFromWorkerJson(const Json &j, const CellRef &c)
{
    if (const Json *f = j.find("failed");
        f && f->isBool() && f->asBool()) {
        StudyRow row;
        row.model = modelName(c.m.id);
        row.training = c.training;
        row.status = CellStatus::Failed;
        const Json *err = j.find("error");
        row.error = err && err->isString() ? err->asString()
                                           : "unknown worker failure";
        const Json *att = j.find("attempts");
        row.attempts = att && att->isNumber()
                           ? static_cast<int>(att->asInt())
                           : 1;
        return row;
    }
    StudyRow row = studyRowFromJson(j);
    row.status = CellStatus::Simulated;
    return row;
}

/**
 * The --isolate-cells execution path: shard the non-cached cells
 * across worker processes under the SweepSupervisor. Row order and
 * (successful) row bytes are identical to the in-process path -
 * rows round-trip through studyRowToJson/FromJson exactly - while a
 * cell that SIGSEGVs, deadlocks or spins costs exactly itself.
 */
std::vector<StudyRow>
runStudyIsolated(const std::vector<CellRef> &cells,
                 const StudyHarness &h, bool want_stats,
                 const std::shared_ptr<ResultCache> &cache,
                 const std::shared_ptr<SweepProgress> &progress)
{
    std::vector<std::optional<StudyRow>> rows(cells.size());

    // Resume pre-pass, identical in behavior to the in-process path:
    // cached cells never reach a worker.
    std::vector<SweepCell> todo;
    std::vector<size_t> todo_idx;
    for (size_t i = 0; i < cells.size(); i++) {
        const CellRef &c = cells[i];
        if (cache && h.resume) {
            std::string key =
                studyCellKey(c.m, c.training, want_stats);
            if (std::optional<Json> v = cache->lookup(key)) {
                try {
                    StudyRow row = studyRowFromJson(*v);
                    row.status = CellStatus::Cached;
                    inform("%s (%s) restored from cache",
                           modelName(c.m.id),
                           c.training ? "training" : "inference");
                    rows[i] = std::move(row);
                    if (progress)
                        progress->cellDone(/*cached=*/true,
                                           /*failed=*/false,
                                           /*attempts=*/1);
                    continue;
                } catch (const std::exception &e) {
                    warn("result cache: entry for %s (%s) does not "
                         "decode (%s); re-simulating",
                         modelName(c.m.id),
                         c.training ? "training" : "inference",
                         e.what());
                }
            }
        }
        todo.push_back({workerCellSpec(c.m, c.training, want_stats),
                        cellLabel(c.m, c.training)});
        todo_idx.push_back(i);
    }

    if (!todo.empty()) {
        SweepSupervisorOptions sopt;
        sopt.workerArgv = h.workerArgv;
        if (sopt.workerArgv.empty())
            sopt.workerArgv.push_back("/proc/self/exe");
        // Re-arm the worker with exactly the harness context that
        // changes a row: cache (stores), in-worker retries and the
        // cooperative timeout, and the fault spec (part of the cache
        // key). Report/trace/metrics stay parent-only.
        if (!h.cacheDir.empty()) {
            sopt.workerArgv.push_back("--cache");
            sopt.workerArgv.push_back(h.cacheDir);
        }
        if (h.retries > 0) {
            sopt.workerArgv.push_back("--retries");
            sopt.workerArgv.push_back(format("%d", h.retries));
        }
        if (h.cellTimeoutSec > 0) {
            sopt.workerArgv.push_back("--cell-timeout");
            sopt.workerArgv.push_back(format("%g", h.cellTimeoutSec));
        }
        if (!h.faultSpec.empty()) {
            sopt.workerArgv.push_back("--fault-spec");
            sopt.workerArgv.push_back(h.faultSpec);
        }
        if (quiet())
            sopt.workerArgv.push_back("--quiet");
        sopt.workers = std::max(1, h.workers);
        sopt.hardTimeoutSec = h.hardTimeoutSec;
        sopt.heartbeatTimeoutSec = h.heartbeatTimeoutSec;
        sopt.backoffMillis = h.backoffMillis;
        sopt.onCellDone = [&progress](const SweepCellResult &r) {
            if (!progress)
                return;
            bool failed = !r.ok;
            if (r.ok) {
                const Json *f = r.row.find("failed");
                failed = f && f->isBool() && f->asBool();
            }
            progress->cellDone(/*cached=*/false, failed,
                               std::max(1, r.attempts));
        };

        SweepSupervisor sup(sopt);
        std::vector<SweepCellResult> results = sup.run(todo);
        for (size_t j = 0; j < results.size(); j++) {
            const SweepCellResult &r = results[j];
            const CellRef &c = cells[todo_idx[j]];
            StudyRow row;
            if (r.ok) {
                try {
                    row = rowFromWorkerJson(r.row, c);
                } catch (const std::exception &e) {
                    row.model = modelName(c.m.id);
                    row.training = c.training;
                    row.status = CellStatus::Failed;
                    row.error = format(
                        "worker row does not decode: %s", e.what());
                    row.attempts = std::max(1, r.attempts);
                }
            } else {
                // Out-of-process failure domain: signal name, hard
                // timeout or heartbeat loss, straight from the
                // supervisor.
                row.model = modelName(c.m.id);
                row.training = c.training;
                row.status = CellStatus::Failed;
                row.error = r.error;
                row.attempts = std::max(1, r.attempts);
            }
            rows[todo_idx[j]] = std::move(row);
        }
    }

    std::vector<StudyRow> out;
    out.reserve(cells.size());
    for (std::optional<StudyRow> &row : rows) {
        panic_if(!row.has_value(), "isolated study cell never "
                                   "resolved");
        out.push_back(std::move(*row));
    }
    return out;
}

} // namespace

std::vector<StudyRow>
runStudy(const StudyOptions &opt)
{
    const std::vector<StudyModel> &models =
        opt.models.empty() ? studyModels() : opt.models;
    ThreadPool &pool = opt.pool ? *opt.pool : ThreadPool::global();
    const StudyHarness &h = opt.harness ? *opt.harness : studyHarness();

    // The stats snapshot is part of the row, so whether one is
    // collected is part of the cache key: a cached row can only stand
    // in for a fresh one when both would carry the same fields.
    bool want_stats = RunReport::global() != nullptr;
    std::shared_ptr<ResultCache> cache;
    if (!h.cacheDir.empty())
        cache = std::make_shared<ResultCache>(h.cacheDir);

    std::vector<CellRef> cells;
    for (const StudyModel &m : models) {
        for (int mode = 0; mode < 2; mode++) {
            bool training = mode == 0;
            if (training && opt.inferenceOnly)
                continue;
            if (!training && opt.trainingOnly)
                continue;
            cells.push_back({m, training});
        }
    }

    // Fan the cells out; collecting the futures in submission order
    // keeps the row order (and hence the figure output) identical to
    // the sequential loop. With a 1-job pool, submit() runs inline
    // and this *is* the sequential loop. Cells restored from the
    // cache become pre-resolved futures in the same sequence, so
    // resumed and uninterrupted runs order rows identically.
    // Host-domain sweep telemetry: progress records into the metrics
    // JSONL and/or the live status line. Constructed only when either
    // consumer exists, so flag-free runs carry zero extra work.
    bool live = h.progress && !quiet() && isatty(STDERR_FILENO);
    std::shared_ptr<SweepProgress> progress;
    if (live || MetricsSink::global())
        progress = std::make_shared<SweepProgress>(cells.size(), live);

    std::vector<StudyRow> rows;
    if (h.isolateCells) {
        // Out-of-process sharding: one worker process per cell under
        // the SweepSupervisor, so a crash costs exactly one cell.
        rows = runStudyIsolated(cells, h, want_stats, cache,
                                progress);
    } else {
        std::vector<std::future<StudyRow>> futs;
        futs.reserve(cells.size());
        for (const CellRef &cell : cells) {
            StudyModel m = cell.m;
            bool training = cell.training;
            std::string key =
                cache ? studyCellKey(m, training, want_stats)
                      : std::string();

            if (cache && h.resume) {
                if (std::optional<Json> v = cache->lookup(key)) {
                    try {
                        StudyRow row = studyRowFromJson(*v);
                        row.status = CellStatus::Cached;
                        inform("%s (%s) restored from cache",
                               modelName(m.id),
                               training ? "training" : "inference");
                        std::promise<StudyRow> done;
                        done.set_value(std::move(row));
                        futs.push_back(done.get_future());
                        if (progress)
                            progress->cellDone(/*cached=*/true,
                                               /*failed=*/false,
                                               /*attempts=*/1);
                        continue;
                    } catch (const std::exception &e) {
                        warn("result cache: entry for %s (%s) does "
                             "not decode (%s); re-simulating",
                             modelName(m.id),
                             training ? "training" : "inference",
                             e.what());
                    }
                }
            }
            futs.push_back(pool.submit([m, training, key, cache,
                                        progress, want_stats, &opt,
                                        &h] {
                StudyRow row = runStudyCellGuarded(m, training, opt,
                                                   h, want_stats);
                if (cache && row.status != CellStatus::Failed)
                    cache->store(key, studyRowToJson(row));
                if (progress)
                    progress->cellDone(
                        /*cached=*/false,
                        row.status == CellStatus::Failed,
                        row.attempts);
                return row;
            }));
        }
        rows.reserve(futs.size());
        for (std::future<StudyRow> &f : futs)
            rows.push_back(f.get());
    }
    // Clear the status line before the tables print: pool task
    // objects may still hold copies of the reporter, so the
    // destructor alone cannot be relied on to run here.
    if (progress)
        progress->finish();
    progress.reset();

    uint64_t cached = 0, failed = 0;
    for (const StudyRow &row : rows) {
        cached += row.status == CellStatus::Cached;
        failed += row.status == CellStatus::Failed;
    }

    // Rows land in the report here, after the ordered collection
    // above, so the report's row order matches the printed tables no
    // matter how the pool scheduled the cells. The harness counters
    // go under "host" (host-side bookkeeping, not simulation output),
    // accumulating across multiple runStudy() calls in one process.
    if (RunReport *rep = RunReport::global()) {
        for (const StudyRow &row : rows)
            rep->addRow(studyRowToJson(row));
        rep->withRoot([&](Json &doc) {
            Json &host = doc["host"];
            auto bump = [&host](const char *key, uint64_t v) {
                const Json *prev = host.find(key);
                host[key] = (prev ? prev->asUint() : 0) + v;
            };
            bump("cellsTotal", rows.size());
            bump("cellsSimulated", rows.size() - cached - failed);
            bump("cellsCached", cached);
            bump("cellsFailed", failed);
            // The fault section only appears when something
            // fault-related happened, keeping fault-free reports
            // byte-identical.
            if (FaultInjector::global().enabled() ||
                decodeErrorCount() > 0)
                host["faults"] = faultStatsJson();
        });
    }

    // Enforce the failure budget only after every row (including the
    // failures) is in the report: fatal() exits through the atexit
    // handlers, so the partial report still flushes for inspection.
    fatal_if(failed > static_cast<uint64_t>(std::max(0, h.failBudget)),
             "%llu study cell(s) failed (budget %d); see the failed "
             "rows above",
             static_cast<unsigned long long>(failed), h.failBudget);
    return rows;
}

std::vector<StudyRow>
runFullStudy(bool training_only, bool inference_only)
{
    StudyOptions opt;
    opt.trainingOnly = training_only;
    opt.inferenceOnly = inference_only;
    return runStudy(opt);
}

namespace {

/**
 * Match "--name V" / "--name=V"; on a hit *value points at V and i is
 * advanced past any consumed extra argv slot.
 */
bool
valueArg(int argc, char **argv, int &i, const char *name,
         const char *shortName, const char **value)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, name) == 0 ||
        (shortName && std::strcmp(arg, shortName) == 0)) {
        fatal_if(i + 1 >= argc, "%s needs a value", arg);
        *value = argv[++i];
        return true;
    }
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *value = arg + n + 1;
        return true;
    }
    return false;
}

long
intValue(const char *flag, const char *value, long lo, long hi)
{
    char *rest = nullptr;
    long v = std::strtol(value, &rest, 10);
    fatal_if(*value == '\0' || (rest && *rest != '\0') || v < lo ||
                 v > hi,
             "bad %s value '%s' (want an integer in [%ld, %ld])",
             flag, value, lo, hi);
    return v;
}

double
secondsValue(const char *flag, const char *value)
{
    char *rest = nullptr;
    double s = std::strtod(value, &rest);
    fatal_if(*value == '\0' || (rest && *rest != '\0') || !(s >= 0),
             "bad %s value '%s' (want seconds >= 0)", flag, value);
    return s;
}

// ----------------------------------------------------------------
// Worker mode (--worker-cell): one isolated study cell per process,
// speaking the supervisor's JSONL protocol on stdout.
// ----------------------------------------------------------------

/** Serializes hello/heartbeat/result records: the heartbeat thread
 *  and the cell thread share stdout, and the supervisor parses it
 *  line-wise, so every record must land whole. */
Mutex workerOutMu;

void
emitWorkerRecord(Json rec) ZCOMP_EXCLUDES(workerOutMu)
{
    rec["schema"] = "zcomp-worker-v1";
    std::string line = rec.dump();
    line += '\n';
    LockGuard lk(workerOutMu);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fflush(stdout);
}

/**
 * Background sign-of-life emitter: one heartbeat record every ~500ms
 * until destruction. The supervisor SIGKILLs workers whose status
 * channel goes silent past --heartbeat-timeout, so a worker stuck in
 * uninstrumented code (a deadlocked cell, a hung syscall) is reaped
 * even when no hard timeout is armed. The stop flag is polled every
 * 50ms instead of a timed condition wait to keep the thread trivially
 * sanitizer-clean.
 */
class WorkerHeartbeat
{
  public:
    explicit WorkerHeartbeat(std::string cell)
    {
        th_ = std::thread([this, cell = std::move(cell)] {
            int ticks = 0;
            while (!stop_.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
                if (++ticks < 10)
                    continue;
                ticks = 0;
                Json r = Json::object();
                r["kind"] = "heartbeat";
                r["cell"] = cell;
                emitWorkerRecord(std::move(r));
            }
        });
    }

    ~WorkerHeartbeat()
    {
        stop_.store(true, std::memory_order_relaxed);
        th_.join();
    }

  private:
    std::atomic<bool> stop_{false};
    std::thread th_;
};

/**
 * Test-only crash hook: ZCOMP_TEST_CRASH_CELL="<model>:<mode>:<how>"
 * makes the worker running that cell die mid-cell, where <how> is
 *   sigsegv - raise a real SIGSEGV (default disposition restored
 *             first, so sanitizer handlers cannot soften it)
 *   sigkill - raise SIGKILL
 *   spin    - hang forever while the heartbeat thread keeps beating
 *             (only the hard wall-clock deadline can reap this)
 *   exit    - exit 42 without reporting a result
 * The hook only ever fires in worker processes, after the hello
 * record, so the supervisor observes a mid-cell death.
 */
void
maybeCrashForTest(const StudyModel &m, bool training)
{
    const char *spec = std::getenv("ZCOMP_TEST_CRASH_CELL");
    if (!spec)
        return;
    std::string s(spec);
    size_t colon = s.rfind(':');
    if (colon == std::string::npos)
        return;
    std::string target = s.substr(0, colon);
    std::string how = s.substr(colon + 1);
    std::string cell = std::string(modelName(m.id)) + ":" +
                       (training ? "training" : "inference");
    if (target != cell)
        return;
    warn("ZCOMP_TEST_CRASH_CELL: crashing cell %s (%s)",
         cell.c_str(), how.c_str());
    if (how == "sigsegv") {
        std::signal(SIGSEGV, SIG_DFL);
        std::raise(SIGSEGV);
    } else if (how == "sigkill") {
        std::raise(SIGKILL);
    } else if (how == "spin") {
        for (;;)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    } else if (how == "exit") {
        std::exit(42);
    }
}

/** The parsed --worker-cell spec (see workerCellSpec()). */
struct WorkerCell
{
    StudyModel m;
    bool training = false;
    bool wantStats = false;
};

WorkerCell
parseWorkerCellSpec(const std::string &spec)
{
    std::string err;
    Json j = Json::parse(spec, &err);
    fatal_if(!err.empty() || !j.isObject(),
             "bad --worker-cell spec: %s",
             err.empty() ? "not an object" : err.c_str());
    const Json *schema = j.find("schema");
    fatal_if(!schema || !schema->isString() ||
                 schema->asString() != workerCellSchema,
             "--worker-cell spec has the wrong schema");
    const Json *model = j.find("model");
    fatal_if(!model || !model->isObject(),
             "--worker-cell spec: missing model");
    auto num = [&](const char *key) {
        const Json *v = model->find(key);
        fatal_if(!v || !v->isNumber(),
                 "--worker-cell spec: missing model.%s", key);
        return v->asDouble();
    };
    WorkerCell wc;
    long id = static_cast<long>(num("id"));
    fatal_if(id < 0 || id >= numModels,
             "--worker-cell spec: bad model id %ld", id);
    wc.m.id = static_cast<ModelId>(id);
    wc.m.trainBatch = static_cast<int>(num("trainBatch"));
    wc.m.inferBatch = static_cast<int>(num("inferBatch"));
    wc.m.imageSize = static_cast<int>(num("imageSize"));
    wc.m.widthScale = num("widthScale");
    const Json *training = j.find("training");
    fatal_if(!training || !training->isBool(),
             "--worker-cell spec: missing training");
    wc.training = training->asBool();
    const Json *stats = j.find("wantStats");
    fatal_if(!stats || !stats->isBool(),
             "--worker-cell spec: missing wantStats");
    wc.wantStats = stats->asBool();
    return wc;
}

int
runWorkerCell(const WorkerCell &wc, const StudyHarness &h)
{
    std::string cell = cellLabel(wc.m, wc.training);
    {
        Json r = Json::object();
        r["kind"] = "hello";
        r["cell"] = cell;
        r["pid"] = static_cast<int64_t>(getpid());
        emitWorkerRecord(std::move(r));
    }
    WorkerHeartbeat heartbeat(cell);
    maybeCrashForTest(wc.m, wc.training);

    StudyOptions opt;
    opt.harness = &h;
    StudyRow row =
        runStudyCellGuarded(wc.m, wc.training, opt, h, wc.wantStats);

    // The worker stores its own row: the cache is the data plane
    // between workers and any later --resume, and a supervisor that
    // dies after this point loses coordination, not results.
    if (!h.cacheDir.empty() && row.status != CellStatus::Failed) {
        ResultCache cache(h.cacheDir);
        cache.store(studyCellKey(wc.m, wc.training, wc.wantStats),
                    studyRowToJson(row));
    }

    Json r = Json::object();
    r["kind"] = "result";
    r["cell"] = cell;
    r["row"] = studyRowToJson(row);
    emitWorkerRecord(std::move(r));
    return 0;
}

} // namespace

void
maybeRunWorkerCell(int argc, char **argv)
{
    bool found = false;
    for (int i = 1; i < argc && !found; i++)
        found = std::strcmp(argv[i], "--worker-cell") == 0 ||
                std::strncmp(argv[i], "--worker-cell=", 14) == 0;
    if (!found)
        return;

    // Workers parse their own (supervisor-built) argv instead of
    // going through parseBenchArgs: no banner, no report/trace/
    // metrics sinks, no atexit machinery - just the harness context
    // that shapes a row.
    std::string spec;
    StudyHarness h;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--quiet") == 0 ||
            std::strcmp(arg, "-q") == 0) {
            setQuiet(true);
        } else if (valueArg(argc, argv, i, "--worker-cell", nullptr,
                            &value)) {
            spec = value;
        } else if (valueArg(argc, argv, i, "--cache", nullptr,
                            &value)) {
            h.cacheDir = value;
        } else if (valueArg(argc, argv, i, "--retries", nullptr,
                            &value)) {
            h.retries = static_cast<int>(
                intValue("--retries", value, 0, 100));
        } else if (valueArg(argc, argv, i, "--cell-timeout", nullptr,
                            &value)) {
            h.cellTimeoutSec = secondsValue("--cell-timeout", value);
        } else if (valueArg(argc, argv, i, "--fault-spec", nullptr,
                            &value)) {
            h.faultSpec = value;
            FaultInjector::global().configure(value);
        } else {
            fatal("unknown worker argument '%s'", arg);
        }
    }
    fatal_if(spec.empty(), "--worker-cell needs a spec");
    std::exit(runWorkerCell(parseWorkerCellSpec(spec), h));
}

void
parseBenchArgs(int argc, char **argv, const std::string &title)
{
    // Worker mode first: a --worker-cell invocation computes its one
    // cell and exits before any banner, report or sink is installed.
    maybeRunWorkerCell(argc, argv);

    std::string report_path, trace_path, metrics_path;
    double metrics_interval = MetricsSink::defaultIntervalCycles;
    bool metrics_interval_set = false;
    bool workers_set = false, hard_timeout_set = false;
    bool heartbeat_set = false;
    StudyHarness &h = studyHarness();
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            std::printf(
                "usage: %s [--jobs N] [--quiet] [--report PATH] "
                "[--trace PATH]\n"
                "       [--metrics PATH] [--metrics-interval N] "
                "[--progress]\n"
                "       [--cache DIR] [--resume] [--retries N] "
                "[--cell-timeout S]\n"
                "       [--fail-budget N] [--isolate-cells] "
                "[--workers N]\n"
                "       [--hard-timeout S] [--heartbeat-timeout S]"
                "\n\n"
                "  --jobs N, -j N    run N study cells in parallel "
                "(default: ZCOMP_JOBS\n"
                "                    or the hardware thread count; "
                "1 = sequential)\n"
                "  --quiet, -q       suppress informational messages "
                "(tables still print)\n"
                "  --report PATH     write a structured JSON run "
                "report (schema\n"
                "                    zcomp-run-report-v1; see "
                "EXPERIMENTS.md)\n"
                "  --trace PATH      write a Chrome/Perfetto trace "
                "of the run\n"
                "                    (open at ui.perfetto.dev)\n"
                "  --metrics PATH    append time-series telemetry "
                "JSONL (schema\n"
                "                    zcomp-metrics-v1: cycle-domain "
                "counter samples\n"
                "                    + host sweep progress; see "
                "EXPERIMENTS.md)\n"
                "  --metrics-interval N  simulated cycles between "
                "samples\n"
                "                    (default 100000; needs "
                "--metrics)\n"
                "  --progress        live one-line sweep status on "
                "stderr (TTY\n"
                "                    only; off under --quiet)\n"
                "  --cache DIR       record every completed study "
                "cell in DIR\n"
                "  --resume          restore cached cells instead of "
                "re-simulating\n"
                "                    (needs --cache; rows are "
                "bitwise-identical)\n"
                "  --retries N       retry a faulting cell N times "
                "with backoff\n"
                "  --cell-timeout S  per-attempt budget in seconds "
                "(fractional ok;\n"
                "                    checked at cell phase "
                "boundaries)\n"
                "  --fail-budget N   tolerate up to N failed cells "
                "before exiting\n"
                "                    non-zero (default 0)\n"
                "  --fault-spec SPEC arm deterministic fault "
                "injection, e.g.\n"
                "                    kernel.transient:1:7:2 "
                "(site:prob[:seed[:max]],\n"
                "                    comma-separated; see "
                "EXPERIMENTS.md)\n"
                "  --isolate-cells   run each study cell in its own "
                "worker process\n"
                "                    (a crashing or hung cell costs "
                "exactly itself;\n"
                "                    see DESIGN.md section 4.11)\n"
                "  --workers N       concurrent worker processes "
                "(default 2; needs\n"
                "                    --isolate-cells)\n"
                "  --hard-timeout S  SIGKILL a cell still running "
                "after S seconds\n"
                "                    and record a typed failed row "
                "(needs\n"
                "                    --isolate-cells)\n"
                "  --heartbeat-timeout S  SIGKILL a worker whose "
                "status channel\n"
                "                    is silent for S seconds "
                "(default 30; needs\n"
                "                    --isolate-cells)\n",
                argv[0]);
            std::exit(0);
        } else if (std::strcmp(arg, "--quiet") == 0 ||
                   std::strcmp(arg, "-q") == 0) {
            setQuiet(true);
        } else if (std::strcmp(arg, "--resume") == 0) {
            h.resume = true;
        } else if (std::strcmp(arg, "--progress") == 0) {
            h.progress = true;
        } else if (valueArg(argc, argv, i, "--metrics", nullptr,
                            &value)) {
            metrics_path = value;
        } else if (valueArg(argc, argv, i, "--metrics-interval",
                            nullptr, &value)) {
            metrics_interval = static_cast<double>(intValue(
                "--metrics-interval", value, 1, 1000000000000L));
            metrics_interval_set = true;
        } else if (valueArg(argc, argv, i, "--jobs", "-j", &value)) {
            ThreadPool::setGlobalJobs(static_cast<int>(
                intValue("--jobs", value, 1, 1024)));
        } else if (valueArg(argc, argv, i, "--report", nullptr,
                            &value)) {
            report_path = value;
        } else if (valueArg(argc, argv, i, "--trace", nullptr,
                            &value)) {
            trace_path = value;
        } else if (valueArg(argc, argv, i, "--cache", nullptr,
                            &value)) {
            h.cacheDir = value;
        } else if (valueArg(argc, argv, i, "--retries", nullptr,
                            &value)) {
            h.retries = static_cast<int>(
                intValue("--retries", value, 0, 100));
        } else if (valueArg(argc, argv, i, "--fail-budget", nullptr,
                            &value)) {
            h.failBudget = static_cast<int>(
                intValue("--fail-budget", value, 0, 1000000));
        } else if (valueArg(argc, argv, i, "--fault-spec", nullptr,
                            &value)) {
            h.faultSpec = value;
            FaultInjector::global().configure(value);
        } else if (valueArg(argc, argv, i, "--cell-timeout", nullptr,
                            &value)) {
            h.cellTimeoutSec = secondsValue("--cell-timeout", value);
        } else if (std::strcmp(arg, "--isolate-cells") == 0) {
            h.isolateCells = true;
        } else if (valueArg(argc, argv, i, "--workers", nullptr,
                            &value)) {
            h.workers = static_cast<int>(
                intValue("--workers", value, 1, 256));
            workers_set = true;
        } else if (valueArg(argc, argv, i, "--hard-timeout", nullptr,
                            &value)) {
            h.hardTimeoutSec = secondsValue("--hard-timeout", value);
            hard_timeout_set = true;
        } else if (valueArg(argc, argv, i, "--heartbeat-timeout",
                            nullptr, &value)) {
            h.heartbeatTimeoutSec =
                secondsValue("--heartbeat-timeout", value);
            heartbeat_set = true;
        } else {
            fatal("unknown argument '%s' (try --help)", arg);
        }
    }
    fatal_if(h.resume && h.cacheDir.empty(),
             "--resume needs --cache DIR (nothing to resume from)");
    fatal_if(metrics_interval_set && metrics_path.empty(),
             "--metrics-interval needs --metrics PATH (nothing is "
             "sampled without a sink)");
    fatal_if(workers_set && !h.isolateCells,
             "--workers needs --isolate-cells (in-process "
             "parallelism is --jobs)");
    fatal_if((hard_timeout_set || heartbeat_set) && !h.isolateCells,
             "--hard-timeout/--heartbeat-timeout need "
             "--isolate-cells (the in-process budget is "
             "--cell-timeout)");

    // Install the process-wide report/trace sinks before any work
    // runs, and flush them at exit so every bench main gets both
    // without being edited. The atexit handlers are idempotent.
    if (!report_path.empty()) {
        std::vector<std::string> args(argv, argv + argc);
        RunReport::enableGlobal(report_path, title, std::move(args));
        RunReport::global()->setMachine(ArchConfig{});
        std::atexit(RunReport::finishGlobal);
        // Registered after finishGlobal, so (LIFO) it runs first and
        // the flushed report carries the final fault/decode counters
        // even when the process exits through fatal().
        std::atexit(+[] {
            RunReport *rep = RunReport::global();
            if (!rep)
                return;
            if (!FaultInjector::global().enabled() &&
                decodeErrorCount() == 0)
                return;
            rep->withRoot([](Json &doc) {
                doc["host"]["faults"] = faultStatsJson();
            });
        });
    }
    if (!trace_path.empty()) {
        TraceWriter::enableGlobal(trace_path);
        std::atexit(TraceWriter::finishGlobal);
    }
    if (!metrics_path.empty()) {
        MetricsSink::enableGlobal(metrics_path, metrics_interval);
        std::atexit(MetricsSink::finishGlobal);
    }
    printBanner(title);
}

void
printBanner(const std::string &title)
{
    ArchConfig cfg;
    std::printf("=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("machine: %s\n", cfg.summary().c_str());
    std::printf("=============================================="
                "==============================\n");
}

} // namespace zcomp::bench
