/**
 * @file
 * Section 3.3 ablation: ZCOMP logic-pipeline latency.
 *
 * Paper: "when we test a 3-cycle logic latency variant, the overall
 * performance is almost identical to the 2-cycle version due to
 * throughput-bound operation."
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "sim/kernels.hh"
#include "workload/deepbench.hh"

using namespace zcomp;

namespace {

double
runWithLatency(int latency, size_t elems, double sparsity)
{
    ArchConfig cfg;
    cfg.zcomp.logicLatency = latency;
    ExecContext ctx(cfg);
    ReluExperimentConfig rc;
    rc.elems = elems;
    rc.sparsity = sparsity;
    return runReluExperiment(ctx, ReluImpl::Zcomp, rc).total().cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Section 3.3 ablation: 2-cycle vs 3-cycle ZCOMP logic");

    Table table("zcomp runtime at different logic latencies");
    table.setHeader({"shape", "2-cycle", "3-cycle", "4-cycle",
                     "3c overhead"});
    double worst = 0;
    for (size_t idx : {2, 12, 25, 32, 43}) {
        const auto &shape = deepBenchShapes()[idx];
        double c2 = runWithLatency(2, shape.elems, shape.sparsity);
        double c3 = runWithLatency(3, shape.elems, shape.sparsity);
        double c4 = runWithLatency(4, shape.elems, shape.sparsity);
        double ovh = c3 / c2 - 1.0;
        worst = std::max(worst, ovh);
        table.addRow({shape.name, Table::fmt(c2, 0),
                      Table::fmt(c3, 0), Table::fmt(c4, 0),
                      Table::fmtPct(ovh)});
    }
    table.print(std::cout);

    std::cout << "\npaper: 3-cycle variant is almost identical to "
                 "2-cycle (throughput-bound).\nmeasured worst-case "
                 "3-cycle overhead: "
              << Table::fmtPct(worst) << "\n";
    return 0;
}
