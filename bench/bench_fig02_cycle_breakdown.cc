/**
 * @file
 * Figure 2 reproduction: CPU cycle breakdown (compute / memory /
 * synchronization) for the five DNN training benchmarks on the
 * uncompressed baseline.
 *
 * Paper: memory stalls account for 24-41% of execution time.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 2: CPU cycle breakdown (training)");

    Table table("normalized cycle breakdown per network");
    table.setHeader({"network", "compute", "memory", "sync"});
    double min_mem = 1.0, max_mem = 0.0;
    for (const auto &m : bench::studyModels()) {
        bench::PreparedNet p = bench::prepareNet(m, /*training=*/true);
        NetworkSim sim(*p.ctx, *p.net);
        NetworkSimConfig cfg;    // uncompressed baseline
        NetworkSimResult r = sim.run(cfg);
        const CycleBreakdown &bd = r.total.breakdown;
        double total = bd.total();
        double mem = bd.memory / total;
        min_mem = std::min(min_mem, mem);
        max_mem = std::max(max_mem, mem);
        table.addRow({modelName(m.id),
                      Table::fmtPct(bd.compute / total),
                      Table::fmtPct(mem),
                      Table::fmtPct(bd.sync / total)});
    }
    table.print(std::cout);

    Table summary("Figure 2 summary vs paper");
    summary.setHeader({"metric", "paper", "measured"});
    summary.addRow({"memory stall fraction range", "24%-41%",
                    Table::fmtPct(min_mem, 0) + "-" +
                        Table::fmtPct(max_mem, 0)});
    summary.print(std::cout);
    return 0;
}
