/**
 * @file
 * Figure 1 reproduction for VGG-16:
 *  (a) per-layer feature-map zero ratio across training epochs
 *  (b) per-layer feature-map vs weight footprint at batch 64
 *
 * (a) runs real (scaled-down) training on synthetic data: image 112,
 * batch 2, two SGD steps per "epoch". (b) is exact, computed from a
 * plan-only build at the paper's batch 64 / 224x224 inputs.
 *
 * Paper observations: sparsity exists at every layer and epoch,
 * pooling reduces it while convolutions mostly enhance it, and the
 * weight data only dominates in the FC layers.
 */

#include <iostream>
#include <vector>

#include "bench/bench_common.hh"
#include "common/log.hh"
#include "common/table.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 1: VGG-16 sparsity and footprints");

    // ---------------------------------------------- (a) zero ratios
    constexpr int epochs = 5;
    constexpr int stepsPerEpoch = 2;

    ArchConfig acfg;
    ExecContext ctx(acfg);
    ModelOptions opt;
    opt.batch = 2;
    opt.imageSize = 112;
    auto net = buildVgg16(ctx.vs(), opt);
    net->build(/*training=*/true, 31);

    // Collect ReLU-output sparsity per epoch (LRN-free VGG: ReLU nodes
    // are exactly the cross-layer activation maps the paper profiles).
    std::vector<int> relu_nodes;
    for (size_t i = 1; i < net->numNodes(); i++) {
        if (net->node(static_cast<int>(i)).layer->kind() ==
            LayerKind::Relu) {
            relu_nodes.push_back(static_cast<int>(i));
        }
    }

    std::vector<std::vector<double>> sparsity(
        relu_nodes.size(), std::vector<double>(epochs, 0.0));
    Rng rng(32);
    for (int e = 0; e < epochs; e++) {
        for (int s = 0; s < stepsPerEpoch; s++) {
            net->fillSyntheticInput(rng);
            net->forward();
            std::vector<int> labels{static_cast<int>(rng.below(100)),
                                    static_cast<int>(rng.below(100))};
            net->lossAndBackward(labels);
            // A gentle learning rate: batch-2 SGD without batch norm
            // kills ReLUs outright at aggressive rates, which would
            // (unrealistically) drive sparsity to 100%.
            net->sgdStep(0.0002f);
        }
        for (size_t l = 0; l < relu_nodes.size(); l++) {
            sparsity[l][static_cast<size_t>(e)] =
                net->activation(relu_nodes[l]).sparsity();
        }
    }

    Table ta("(a) per-layer zero ratio by training epoch");
    std::vector<std::string> header{"layer"};
    for (int e = 1; e <= epochs; e++)
        header.push_back(format("epoch%d", e));
    ta.setHeader(header);
    double overall = 0;
    for (size_t l = 0; l < relu_nodes.size(); l++) {
        std::vector<std::string> row{
            net->node(relu_nodes[l]).layer->name()};
        for (int e = 0; e < epochs; e++) {
            row.push_back(
                Table::fmtPct(sparsity[l][static_cast<size_t>(e)], 0));
            overall += sparsity[l][static_cast<size_t>(e)];
        }
        ta.addRow(row);
    }
    ta.print(std::cout);
    overall /= static_cast<double>(relu_nodes.size() * epochs);
    std::cout << "overall average zero ratio: "
              << Table::fmtPct(overall)
              << "  (paper: sparsity at all layers, ~49-63% per net)\n\n";

    // ------------------------------------------------ (b) footprints
    VSpace plan(0x10000, /*allocate_host=*/false);
    ModelOptions paper_opt;
    paper_opt.batch = 64;
    auto paper_net = buildVgg16(plan, paper_opt);
    paper_net->build(/*training=*/false);

    Table tb("(b) per-layer feature-map vs weight footprint "
             "(batch 64, 224x224)");
    tb.setHeader({"layer", "feature map", "weights"});
    for (size_t i = 1; i < paper_net->numNodes(); i++) {
        const auto &node = paper_net->node(static_cast<int>(i));
        LayerKind kind = node.layer->kind();
        if (kind != LayerKind::Conv && kind != LayerKind::Fc)
            continue;
        tb.addRow({node.layer->name(),
                   Table::fmtBytes(static_cast<double>(
                       node.act->bytes())),
                   Table::fmtBytes(static_cast<double>(
                       node.layer->weightBytes()))});
    }
    tb.print(std::cout);
    std::cout << "\npaper: early conv layers generate hundreds of MB "
                 "of cross-layer maps;\nweights only dominate in the "
                 "FC layers.\n";
    return 0;
}
