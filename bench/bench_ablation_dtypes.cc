/**
 * @file
 * Element-type ablation (Section 3: "each instruction has multiple
 * variants to support different data types"): compression ratio and
 * metadata amortization across fp64/fp32/fp16/int8 variants.
 *
 * The header carries one bit per lane, so lower precisions pay
 * relatively more metadata per byte (fp32: 2 B per 64 B vector =
 * 3.125%; int8: 8 B = 12.5%) - the alignment/amortization trade-off
 * Section 3.3 discusses.
 */

#include <cstring>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "workload/snapshot.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

namespace {

/** Compress a buffer of `vectors` 512-bit vectors at given sparsity. */
StreamStats
compressAs(ElemType t, size_t vectors, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    const int lanes = lanesPerVec(t);
    const int eb = elemBytes(t);
    std::vector<uint8_t> dst(vectors *
                             static_cast<size_t>(
                                 maxCompressedBytes(t)));
    CompressedWriter w(dst.data(), dst.size(), t, Ccf::EQZ,
                       /*record_nnz=*/false);
    for (size_t i = 0; i < vectors; i++) {
        Vec512 v = Vec512::zero();
        for (int l = 0; l < lanes; l++) {
            if (!rng.chance(sparsity)) {
                uint64_t raw = rng.next64() | 1;
                std::memcpy(v.bytes + l * eb, &raw,
                            static_cast<size_t>(eb));
            }
        }
        w.put(v);
    }
    return w.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "data-type ablation: header amortization");

    Table table("compression ratio by element type (64 KiB buffers)");
    table.setHeader({"dtype", "lanes", "header", "ratio @35%",
                     "ratio @53%", "ratio @70%", "min sparsity to fit"});
    const ElemType types[] = {ElemType::F64, ElemType::F32,
                              ElemType::F16, ElemType::I8};
    for (ElemType t : types) {
        const size_t vectors = 1024;
        double r35 = compressAs(t, vectors, 0.35, 1).ratio();
        double r53 = compressAs(t, vectors, 0.53, 2).ratio();
        double r70 = compressAs(t, vectors, 0.70, 3).ratio();
        // Break-even sparsity: headerBytes == dropped payload.
        double brk = static_cast<double>(headerBytes(t)) / 64.0;
        table.addRow({elemSuffix(t),
                      std::to_string(lanesPerVec(t)),
                      std::to_string(headerBytes(t)) + " B",
                      Table::fmt(r35, 2) + "x", Table::fmt(r53, 2) + "x",
                      Table::fmt(r70, 2) + "x", Table::fmtPct(brk)});
    }
    table.print(std::cout);

    std::cout << "\npaper (Section 4.1): for fp32/512-bit vectors a "
                 "3.125% compressibility amortizes\nthe metadata; "
                 "lower precisions need proportionally more (and, per "
                 "Section 3.3,\nsub-2-byte alignment may add redundant "
                 "transfers).\n";
    return 0;
}
