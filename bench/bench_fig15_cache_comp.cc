/**
 * @file
 * Figure 15 reproduction: effective compression ratio of ZCOMP vs
 * cache compression (FPC-D based) on feature-map snapshots from the
 * five DNN workloads - LimitCC (byte-granular unrestricted packing)
 * and TwoTagCC (at most two logical lines per physical line).
 *
 * Paper geomeans: ZCOMP 1.8, LimitCC 1.54, TwoTagCC 1.1.
 */

#include <cstring>
#include <iostream>

#include "bench/bench_common.hh"
#include "cachecomp/cache_model.hh"
#include "common/table.hh"

using namespace zcomp;

namespace {

/**
 * Five static snapshots per network: the concatenated ReLU-output
 * maps of a forward pass on five different synthetic inputs.
 */
std::vector<std::vector<uint8_t>>
snapshotsOf(const bench::StudyModel &m)
{
    std::vector<std::vector<uint8_t>> snaps;
    for (int s = 0; s < 5; s++) {
        bench::PreparedNet p = bench::prepareNet(
            m, /*training=*/false, 500 + static_cast<uint64_t>(s));
        std::vector<uint8_t> bytes;
        for (size_t i = 1; i < p.net->numNodes(); i++) {
            const auto &node = p.net->node(static_cast<int>(i));
            if (node.layer->kind() != LayerKind::Relu)
                continue;
            size_t aligned = node.act->bytes() / 64 * 64;
            size_t off = bytes.size();
            bytes.resize(off + aligned);
            std::memcpy(bytes.data() + off, node.act->data(), aligned);
            if (bytes.size() > 8u * 1024 * 1024)
                break;      // 8 MiB per snapshot is plenty
        }
        snaps.push_back(std::move(bytes));
    }
    return snaps;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 15: ZCOMP vs cache compression");

    Table table("compression ratios (5 snapshots per network)");
    table.setHeader({"network", "zcomp", "limitCC", "twoTagCC"});
    std::vector<double> all_z, all_l, all_t;
    for (const auto &m : bench::studyModels()) {
        std::vector<double> z, l, t;
        for (const auto &snap : snapshotsOf(m)) {
            CompRatios r = analyzeSnapshot(snap.data(), snap.size());
            z.push_back(r.zcomp);
            l.push_back(r.limitCC);
            t.push_back(r.twoTagCC);
        }
        all_z.insert(all_z.end(), z.begin(), z.end());
        all_l.insert(all_l.end(), l.begin(), l.end());
        all_t.insert(all_t.end(), t.begin(), t.end());
        table.addRow({modelName(m.id), Table::fmt(geomean(z), 2),
                      Table::fmt(geomean(l), 2),
                      Table::fmt(geomean(t), 2)});
    }
    table.print(std::cout);

    Table summary("Figure 15 summary vs paper (geometric means)");
    summary.setHeader({"scheme", "paper", "measured"});
    summary.addRow({"ZCOMP", "1.80", Table::fmt(geomean(all_z), 2)});
    summary.addRow({"LimitCC", "1.54", Table::fmt(geomean(all_l), 2)});
    summary.addRow({"TwoTagCC", "1.10", Table::fmt(geomean(all_t), 2)});
    summary.print(std::cout);
    return 0;
}
