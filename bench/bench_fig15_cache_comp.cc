/**
 * @file
 * Figure 15 reproduction, enlarged: effective compression ratio of
 * every registered CompressionScheme on feature-map snapshots from
 * the five DNN workloads. The paper's field (ZCOMP vs the FPC-D
 * cache-compression baselines LimitCC and TwoTagCC) is extended with
 * EBPC (bit-plane coding) and cDMA-style ZVC; the registry drives the
 * tables, so a new scheme shows up here by registering itself.
 *
 * Paper geomeans: ZCOMP 1.8, LimitCC 1.54, TwoTagCC 1.1.
 *
 * Per-scheme summary columns:
 *  - ratio   : geomean snapshot compression ratio across all
 *              networks/snapshots;
 *  - traffic : relative cross-layer bytes moved, 1/ratio;
 *  - speedup : a bandwidth-bound model of the end-to-end effect.
 *              With m the memory-bound fraction of baseline run time
 *              (Figure 2 puts memory time at 24-41%; we use 1/3) and
 *              a 64-cycle baseline transfer per 64 B line (1 B/cycle
 *              of effective per-core bandwidth):
 *                base cycles/line: C_cpu + C_mem, C_mem = 64,
 *                                  C_cpu = C_mem * (1-m)/m
 *                scheme cycles   : C_cpu + C_mem/ratio
 *                                  + packCyclesPerLine
 *                                  + unpackCyclesPerLine
 *              speedup = base / scheme. Not a substitute for the
 *              full Figure 14 simulation - a common yardstick for
 *              schemes that have no timing-model dispatch.
 *
 * --smoke swaps the workload snapshots for small synthetic
 * activation buffers and asserts every registered scheme appears
 * exactly once in the summary (the tier-1 ctest hook).
 */

#include <cstring>
#include <iostream>
#include <map>

#include "bench/bench_common.hh"
#include "cachecomp/cache_model.hh"
#include "cachecomp/scheme.hh"
#include "common/table.hh"
#include "workload/snapshot.hh"

using namespace zcomp;

namespace {

/**
 * Five static snapshots per network: the concatenated ReLU-output
 * maps of a forward pass on five different synthetic inputs.
 */
std::vector<std::vector<uint8_t>>
snapshotsOf(const bench::StudyModel &m)
{
    std::vector<std::vector<uint8_t>> snaps;
    for (int s = 0; s < 5; s++) {
        bench::PreparedNet p = bench::prepareNet(
            m, /*training=*/false, 500 + static_cast<uint64_t>(s));
        std::vector<uint8_t> bytes;
        for (size_t i = 1; i < p.net->numNodes(); i++) {
            const auto &node = p.net->node(static_cast<int>(i));
            if (node.layer->kind() != LayerKind::Relu)
                continue;
            size_t aligned = node.act->bytes() / 64 * 64;
            size_t off = bytes.size();
            bytes.resize(off + aligned);
            std::memcpy(bytes.data() + off, node.act->data(), aligned);
            if (bytes.size() > 8u * 1024 * 1024)
                break;      // 8 MiB per snapshot is plenty
        }
        snaps.push_back(std::move(bytes));
    }
    return snaps;
}

/** --smoke stand-in: small synthetic activation snapshots at the
 *  default feature-map sparsity, one per seed. */
std::vector<std::vector<uint8_t>>
syntheticSnapshots(uint64_t base_seed)
{
    std::vector<std::vector<uint8_t>> snaps;
    for (int s = 0; s < 2; s++) {
        std::vector<float> acts = makeActivations(
            4096, SnapshotParams{}, base_seed + static_cast<uint64_t>(s));
        std::vector<uint8_t> bytes(acts.size() * 4);
        std::memcpy(bytes.data(), acts.data(), bytes.size());
        snaps.push_back(std::move(bytes));
    }
    return snaps;
}

/** The Figure 15 speedup model described in the file header. */
double
schemeSpeedup(const CompressionScheme &s, double ratio)
{
    constexpr double mem_fraction = 1.0 / 3.0;
    constexpr double mem_cycles = 64;
    const double cpu_cycles =
        mem_cycles * (1.0 - mem_fraction) / mem_fraction;
    double base = cpu_cycles + mem_cycles;
    double with = cpu_cycles + mem_cycles / ratio +
                  s.packCyclesPerLine() + s.unpackCyclesPerLine();
    return base / with;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else
            rest.push_back(argv[i]);
    }
    bench::parseBenchArgs(static_cast<int>(rest.size()), rest.data(),
        "Figure 15: ZCOMP vs cache compression (all schemes)");

    const std::vector<const CompressionScheme *> &schemes =
        allSchemes();

    // Per-network table: one ratio column per registered scheme.
    Table table(smoke
                    ? "compression ratios (synthetic smoke snapshots)"
                    : "compression ratios (5 snapshots per network)");
    std::vector<std::string> header{"network"};
    for (const CompressionScheme *s : schemes)
        header.push_back(s->name());
    table.setHeader(header);

    std::vector<std::vector<double>> all(schemes.size());
    uint64_t smoke_seed = 900;
    for (const auto &m : bench::studyModels()) {
        auto snaps = smoke ? syntheticSnapshots(smoke_seed += 10)
                           : snapshotsOf(m);
        std::vector<std::vector<double>> per(schemes.size());
        for (const auto &snap : snaps) {
            for (size_t si = 0; si < schemes.size(); si++) {
                double r = schemes[si]->snapshotRatio(snap.data(),
                                                      snap.size());
                per[si].push_back(r);
                all[si].push_back(r);
            }
        }
        std::vector<std::string> cells{modelName(m.id)};
        for (size_t si = 0; si < schemes.size(); si++)
            cells.push_back(Table::fmt(geomean(per[si]), 2));
        table.addRow(cells);
    }
    table.print(std::cout);

    // The per-scheme ratio/traffic/speedup summary the registry
    // contract promises: exactly one row per registered scheme.
    Table summary("per-scheme summary (geomean ratio, relative "
                  "traffic, modeled speedup)");
    summary.setHeader({"scheme", "ratio", "traffic", "speedup"});
    std::vector<std::string> emitted;
    for (size_t si = 0; si < schemes.size(); si++) {
        double ratio = geomean(all[si]);
        emitted.push_back(schemes[si]->name());
        summary.addRow({schemes[si]->name(), Table::fmt(ratio, 2),
                        Table::fmtPct(1.0 / ratio),
                        Table::fmt(schemeSpeedup(*schemes[si], ratio),
                                   3) +
                            "x"});
    }
    summary.print(std::cout);

    auto measured = [&](const char *name) {
        for (size_t si = 0; si < schemes.size(); si++) {
            if (!std::strcmp(schemes[si]->name(), name))
                return geomean(all[si]);
        }
        fatal("scheme '%s' not registered", name);
    };
    Table paper("Figure 15 vs paper (geometric means)");
    paper.setHeader({"scheme", "paper", "measured"});
    paper.addRow({"zcomp", "1.80", Table::fmt(measured("zcomp"), 2)});
    paper.addRow({"limitcc", "1.54",
                  Table::fmt(measured("limitcc"), 2)});
    paper.addRow({"twotagcc", "1.10",
                  Table::fmt(measured("twotagcc"), 2)});
    paper.print(std::cout);

    if (smoke) {
        // Tier-1 assertion: every registered scheme landed in the
        // emitted summary exactly once, and the new comparators are
        // among them.
        int failures = 0;
        std::map<std::string, int> seen;
        for (const std::string &name : emitted)
            seen[name]++;
        for (const CompressionScheme *s : schemes) {
            int count = seen.count(s->name()) ? seen[s->name()] : 0;
            if (count != 1) {
                std::printf("FAIL: scheme '%s' appears %d times in "
                            "the summary\n", s->name(), count);
                failures++;
            }
        }
        for (const char *want :
             {"uncompressed", "avx512-comp", "zcomp", "limitcc",
              "twotagcc", "ebpc", "zvc"}) {
            if (!seen.count(want)) {
                std::printf("FAIL: scheme '%s' missing from the "
                            "summary\n", want);
                failures++;
            }
        }
        if (failures) {
            std::printf("bench_fig15 smoke: %d check(s) failed\n",
                        failures);
            return 1;
        }
        std::printf("bench_fig15 smoke: all %zu schemes present "
                    "exactly once\n", schemes.size());
    }
    return 0;
}
