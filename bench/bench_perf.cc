/**
 * @file
 * bench_perf - the simulator's performance-regression trajectory.
 *
 * Runs a pinned micro-kernel set (ZCOMP vector round-trips, FPC line
 * classification, GEMM) and a pinned Figure 13/14 study subset under
 * every available SIMD backend in one process, and writes a
 * BENCH_<date>.json snapshot: throughput rates, wall-clock per
 * figure subset, peak RSS, git sha and backend names. CI compares a
 * fresh snapshot against the committed baseline with
 * tools/bench_perf.py and fails on >5% regressions (see
 * EXPERIMENTS.md, "bench_perf trajectory").
 *
 *   bench_perf [--quick] [--out PATH] [shared bench args]
 *
 * --quick shrinks iteration counts and the study subset for the CI
 * smoke leg; trajectory baselines are recorded without it. Simulated
 * *results* are backend-independent (the differential tests enforce
 * bit-identity); only the rates differ between backends.
 */

#include <sys/resource.h>
#include <sys/utsname.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "cachecomp/ebpc.hh"
#include "cachecomp/fpc.hh"
#include "cachecomp/fpcd.hh"
#include "cachecomp/zvc.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "dnn/gemm.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

namespace {

using Clock = std::chrono::steady_clock;

double
secSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** ~60% zero fp32 test pattern, deterministic across runs/backends. */
std::vector<float>
sparsePattern(size_t elems)
{
    Rng rng(42);
    std::vector<float> v(elems);
    for (size_t i = 0; i < elems; i++) {
        v[i] = rng.uniform() < 0.6
                   ? 0.0f
                   : static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return v;
}

/** zcomps+zcompl round-trips of a whole buffer, in vectors/sec. */
double
microVecRoundTrips(bool quick)
{
    const size_t elems = quick ? (size_t{1} << 18) : (size_t{1} << 20);
    const int iters = quick ? 4 : 16;
    std::vector<float> src = sparsePattern(elems);
    std::vector<uint8_t> comp(elems * 4 + (elems / 16) * 2);
    std::vector<float> back(elems);

    Clock::time_point t0 = Clock::now();
    uint64_t vectors = 0;
    for (int it = 0; it < iters; it++) {
        StreamStats ws = compressBufferPs(src.data(), elems, comp.data(),
                                          comp.size(), Ccf::EQZ);
        expandBufferPs(comp.data(), ws.totalBytes(), back.data(), elems);
        vectors += ws.vectors;
    }
    double sec = secSince(t0);
    fatal_if(std::memcmp(src.data(), back.data(), elems * 4) != 0,
             "bench_perf round-trip mismatch");
    return static_cast<double>(vectors) / sec;
}

/** FPC + FPC-D classification of 64 B lines, in lines/sec. */
double
microFpcLines(bool quick)
{
    const size_t lines = quick ? (size_t{1} << 14) : (size_t{1} << 16);
    const int iters = quick ? 4 : 16;
    std::vector<float> pat = sparsePattern(lines * 16);
    const uint8_t *bytes = reinterpret_cast<const uint8_t *>(pat.data());

    Clock::time_point t0 = Clock::now();
    uint64_t sink = 0;
    for (int it = 0; it < iters; it++) {
        for (size_t l = 0; l < lines; l++) {
            sink += static_cast<uint64_t>(fpcLineBytes(bytes + l * 64));
            sink += static_cast<uint64_t>(fpcdLineBytes(bytes + l * 64));
        }
    }
    double sec = secSince(t0);
    fatal_if(sink == 0, "bench_perf fpc sink is zero");
    return static_cast<double>(lines) * 2 * iters / sec;
}

/** One scheme codec's 64 B line sizing over sparse data, lines/sec
 *  (the EBPC/ZVC trajectory legs; see tools/bench_perf.py). */
double
microSchemeLines(int (*line_bytes)(const uint8_t *), bool quick)
{
    const size_t lines = quick ? (size_t{1} << 13) : (size_t{1} << 15);
    const int iters = quick ? 4 : 16;
    std::vector<float> pat = sparsePattern(lines * 16);
    const uint8_t *bytes = reinterpret_cast<const uint8_t *>(pat.data());

    Clock::time_point t0 = Clock::now();
    uint64_t sink = 0;
    for (int it = 0; it < iters; it++) {
        for (size_t l = 0; l < lines; l++)
            sink += static_cast<uint64_t>(line_bytes(bytes + l * 64));
    }
    double sec = secSince(t0);
    fatal_if(sink == 0, "bench_perf scheme sink is zero");
    return static_cast<double>(lines) * iters / sec;
}

/** A*Bt GEMM (the conv/FC inner product shape), in MAC/sec. */
double
microGemm(bool quick)
{
    const size_t m = quick ? 64 : 128, n = 128, k = 256;
    const int iters = quick ? 8 : 32;
    std::vector<float> a = sparsePattern(m * k);
    std::vector<float> b = sparsePattern(n * k);
    std::vector<float> c(m * n);

    Clock::time_point t0 = Clock::now();
    for (int it = 0; it < iters; it++)
        gemmABt(m, n, k, a.data(), b.data(), c.data());
    double sec = secSince(t0);
    return static_cast<double>(m * n * k) * iters / sec;
}

/** The pinned Figure 13/14 study subset for this backend. */
Json
figureSubset(bool quick)
{
    bench::StudyOptions opt;
    opt.models = quick
        ? std::vector<bench::StudyModel>{
              {ModelId::Resnet32, 4, 2, 0, 1.0}}
        : std::vector<bench::StudyModel>{
              {ModelId::Resnet32, 64, 4, 0, 1.0},
              {ModelId::AlexNet, 16, 2, 0, 1.0}};

    Clock::time_point t0 = Clock::now();
    auto rows = bench::runStudy(opt);
    double sec = secSince(t0);

    int cells = 0;
    for (const auto &row : rows)
        cells += row.status != bench::CellStatus::Failed;
    fatal_if(cells == 0, "bench_perf study subset produced no cells");

    Json j = Json::object();
    j["wallSeconds"] = sec;
    j["cells"] = cells;
    j["cellsPerSec"] = cells / sec;
    return j;
}

std::string
gitSha()
{
    // One-shot metadata probe, read-to-EOF and pclose()d right here;
    // the Subprocess machinery would be overkill for it.
    // zcomp-lint: allow(process-isolation)
    FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[64] = {};
    size_t n = fread(buf, 1, sizeof(buf) - 1, p);
    pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

std::string
todayIso()
{
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    localtime_r(&t, &tm);
    char buf[16];
    std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out;
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            rest.push_back(argv[i]);
        }
    }
    bench::parseBenchArgs(static_cast<int>(rest.size()), rest.data(),
        "bench_perf: regression trajectory (micro + study subset)");
    if (out.empty())
        out = "BENCH_" + todayIso() + ".json";

    // Scalar first, then the best native backend (when distinct), in
    // one process so both halves see identical host conditions.
    std::vector<simd::Backend> backends{simd::Backend::Scalar};
    if (simd::bestSupportedBackend() != simd::Backend::Scalar)
        backends.push_back(simd::bestSupportedBackend());

    Json bk = Json::array();
    for (simd::Backend b : backends) {
        simd::setBackend(b);
        inform("bench_perf: backend %s...", simd::backendName(b));
        Json micro = Json::object();
        micro["vecRoundTripsPerSec"] = microVecRoundTrips(quick);
        micro["fpcLinesPerSec"] = microFpcLines(quick);
        micro["ebpcLinesPerSec"] = microSchemeLines(ebpcLineBytes, quick);
        micro["zvcLinesPerSec"] = microSchemeLines(zvcLineBytes, quick);
        micro["gemmMacsPerSec"] = microGemm(quick);
        Json fig = figureSubset(quick);

        // Telemetry tax: the same subset again with a throwaway
        // --metrics sink at the default interval, reported as a
        // wall-clock ratio (1.0 = free; EXPERIMENTS.md gates < 1.03).
        // Skipped when the user's own --metrics sink is installed -
        // replacing it would clobber their stream, and the first run
        // would already have been sampled anyway.
        if (!MetricsSink::global()) {
            const std::string probe = out + ".metrics-probe.jsonl";
            MetricsSink::enableGlobal(probe);
            Json figm = figureSubset(quick);
            MetricsSink::finishGlobal();
            std::remove(probe.c_str());
            fig["metricsOverheadRatio"] =
                figm["wallSeconds"].asDouble() /
                fig["wallSeconds"].asDouble();
        }

        Json figures = Json::object();
        figures["fig13_14_subset"] = std::move(fig);
        Json entry = Json::object();
        entry["backend"] = simd::backendName(b);
        entry["micro"] = std::move(micro);
        entry["figures"] = std::move(figures);
        bk.push(std::move(entry));
    }

    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    struct utsname un{};
    uname(&un);

    Json j = Json::object();
    j["schema"] = "zcomp-bench-perf-v1";
    j["date"] = todayIso();
    j["gitSha"] = gitSha();
    j["quick"] = quick;
    Json host = Json::object();
    host["machine"] = std::string(un.machine) + " " + un.sysname;
    host["node"] = un.nodename;
    // ru_maxrss is KiB on Linux.
    host["peakRssBytes"] =
        static_cast<uint64_t>(ru.ru_maxrss) * 1024;
    j["host"] = std::move(host);
    j["backends"] = std::move(bk);

    std::ofstream f(out);
    fatal_if(!f, "cannot write %s", out.c_str());
    f << j.dump(2) << "\n";
    inform("bench_perf: wrote %s", out.c_str());
    std::printf("bench_perf: ok (%s)\n", out.c_str());
    return 0;
}
