/**
 * @file
 * Section 4.4 reproduction: static instruction and register usage of
 * the compression-enabled ReLU loop bodies (Figures 8-11).
 *
 * Paper: "AVX512 vcompress and vexpand require 5-6 extra static
 * scalar/vector instructions inside the loop body, and use 4-5
 * additional registers, compared to ZCOMP."
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "sim/kernels.hh"

using namespace zcomp;

namespace {

void
printBody(const KernelBody &body, Table &table)
{
    std::string mix;
    for (const auto &[cls, count] : body.instrs) {
        if (!mix.empty())
            mix += " ";
        mix += instrClassName(cls);
        if (count > 1)
            mix += "x" + std::to_string(count);
    }
    table.addRow({body.name, std::to_string(body.totalInstrs()),
                  std::to_string(body.totalUops()),
                  std::to_string(body.vecRegs),
                  std::to_string(body.maskRegs),
                  std::to_string(body.scalarRegs), mix});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Section 4.4: static loop-body comparison (Figures 8-11)");

    Table table("per-iteration loop bodies");
    table.setHeader({"kernel", "instrs", "uops", "vregs", "kregs",
                     "gprs", "instruction mix"});
    for (int i = 0; i < numReluImpls; i++) {
        printBody(reluStoreBody(static_cast<ReluImpl>(i)), table);
        printBody(reluRetrieveBody(static_cast<ReluImpl>(i)), table);
    }
    table.print(std::cout);

    KernelBody zs = reluStoreBody(ReluImpl::Zcomp);
    KernelBody as = reluStoreBody(ReluImpl::Avx512Comp);
    Table summary("Section 4.4 summary vs paper (store loop)");
    summary.setHeader({"metric", "paper", "measured"});
    summary.addRow({"extra static instructions (avx512-comp)", "5-6",
                    std::to_string(as.totalInstrs() -
                                   zs.totalInstrs())});
    summary.addRow({"extra registers (avx512-comp)", "4-5",
                    std::to_string(as.totalRegs() - zs.totalRegs())});
    summary.print(std::cout);
    return 0;
}
