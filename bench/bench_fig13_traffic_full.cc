/**
 * @file
 * Figure 13 reproduction: data traffic reduction on the five full
 * networks, training and inference, for ZCOMP and avx512-comp vs the
 * uncompressed baseline.
 *
 * Paper: average reductions 31%/26% (train, ZCOMP/avx512-comp) and
 * 23%/19% (inference).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 13: full-network data traffic reduction");

    auto rows = bench::runFullStudy();

    Table table("traffic reduction vs uncompressed (all links + DRAM)");
    table.setHeader({"network", "mode", "baseline", "avx512-comp",
                     "zcomp"});
    double red_c[2] = {0, 0}, red_z[2] = {0, 0};
    int count[2] = {0, 0};
    for (const auto &row : rows) {
        uint64_t base = row.result("uncompressed").trafficBytes();
        double rc = 1.0 - static_cast<double>(
                              row.result("avx512-comp")
                                  .trafficBytes()) /
                              base;
        double rz = 1.0 - static_cast<double>(
                              row.result("zcomp").trafficBytes()) /
                              base;
        int mode = row.training ? 0 : 1;
        red_c[mode] += rc;
        red_z[mode] += rz;
        count[mode]++;
        table.addRow({row.model, row.training ? "train" : "infer",
                      Table::fmtBytes(static_cast<double>(base)),
                      Table::fmtPct(rc), Table::fmtPct(rz)});
    }
    table.print(std::cout);

    Table summary("Figure 13 summary vs paper");
    summary.setHeader({"metric", "paper", "measured"});
    summary.addRow({"avg training reduction (zcomp)", "31%",
                    Table::fmtPct(red_z[0] / count[0])});
    summary.addRow({"avg training reduction (avx512-comp)", "26%",
                    Table::fmtPct(red_c[0] / count[0])});
    summary.addRow({"avg inference reduction (zcomp)", "23%",
                    Table::fmtPct(red_z[1] / count[1])});
    summary.addRow({"avg inference reduction (avx512-comp)", "19%",
                    Table::fmtPct(red_c[1] / count[1])});
    summary.print(std::cout);
    return 0;
}
