/**
 * @file
 * Figure 12 reproduction: the ReLU activation layer over the 44
 * DeepBench shapes under avx512-vec / avx512-comp / zcomp.
 *
 *  (a) core<->cache data traffic per implementation
 *  (b) off-chip DRAM traffic (with the cache-fit cliff)
 *  (c) runtime and the speedups over the baseline
 *
 * Paper headline numbers: traffic -42%/-46% (avx512-comp / ZCOMP),
 * DRAM -48%/-54%, ZCOMP +77% over baseline and +56% over avx512-comp
 * on average, 2 small outliers at -2%/-4%, superlinear speedups (up
 * to 12x) at the cache-fit cliff, severe avx512-comp degradation on
 * small shapes.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "sim/kernels.hh"
#include "workload/deepbench.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 12: ReLU activation layer on DeepBench shapes");

    Table table("per-shape results (store + retrieve passes)");
    table.setHeader({"suite", "shape", "size", "traffic(v/c/z)",
                     "dram(v/c/z)", "speedup c", "speedup z"});

    // Per-suite and global accumulators (arithmetic means over
    // shapes, matching the paper's "average" phrasing).
    double traffic_red_c = 0, traffic_red_z = 0;
    double dram_red_c = 0, dram_red_z = 0, dram_shapes = 0;
    double speed_c = 0, speed_z = 0;
    double max_speed_z = 0;
    int outliers = 0;

    const auto &shapes = deepBenchShapes();
    for (const auto &shape : shapes) {
        RunStats total[numReluImpls];
        for (int i = 0; i < numReluImpls; i++) {
            ArchConfig cfg;
            ExecContext ctx(cfg);
            ReluExperimentConfig rc;
            rc.elems = shape.elems;
            rc.sparsity = shape.sparsity;
            rc.seed = 1000 + shape.elems % 977;
            // DRAM-resident shapes need no cache warmup; skipping it
            // halves the simulation cost of the biggest inputs.
            rc.warmup = shape.bytes() < 4 * cfg.l3.size;
            // Tiny layers are benchmarked over many iterations, as a
            // real layer microbenchmark would be, amortizing startup
            // and drain transients.
            rc.repeats = static_cast<int>(std::min<size_t>(
                16, std::max<size_t>(1, (2u << 20) / shape.bytes())));
            total[i] =
                runReluExperiment(ctx, static_cast<ReluImpl>(i), rc)
                    .total();
        }

        auto &v = total[0];
        auto &c = total[1];
        auto &z = total[2];
        double tr_c = 1.0 - static_cast<double>(
                                c.traffic.coreL1Bytes) /
                                v.traffic.coreL1Bytes;
        double tr_z = 1.0 - static_cast<double>(
                                z.traffic.coreL1Bytes) /
                                v.traffic.coreL1Bytes;
        double sp_c = v.cycles / c.cycles;
        double sp_z = v.cycles / z.cycles;
        traffic_red_c += tr_c;
        traffic_red_z += tr_z;
        speed_c += sp_c;
        speed_z += sp_z;
        max_speed_z = std::max(max_speed_z, sp_z);
        if (sp_z < 1.0)
            outliers++;

        std::string dram_cell = "-";
        if (v.traffic.l3DramBytes > shape.bytes() / 4) {
            double dr_c = 1.0 - static_cast<double>(
                                    c.traffic.l3DramBytes) /
                                    v.traffic.l3DramBytes;
            double dr_z = 1.0 - static_cast<double>(
                                    z.traffic.l3DramBytes) /
                                    v.traffic.l3DramBytes;
            dram_red_c += dr_c;
            dram_red_z += dr_z;
            dram_shapes += 1;
            dram_cell = Table::fmtPct(dr_c, 0) + "/" +
                        Table::fmtPct(dr_z, 0);
        }

        table.addRow(
            {benchSuiteName(shape.suite), shape.name,
             Table::fmtBytes(static_cast<double>(shape.bytes())),
             Table::fmtPct(tr_c, 0) + "/" + Table::fmtPct(tr_z, 0),
             dram_cell, Table::fmt(sp_c, 2) + "x",
             Table::fmt(sp_z, 2) + "x"});
    }
    table.print(std::cout);

    double n = static_cast<double>(shapes.size());
    Table summary("Figure 12 summary vs paper");
    summary.setHeader({"metric", "paper", "measured"});
    summary.addRow({"core-cache traffic red. (avx512-comp)", "42%",
                    Table::fmtPct(traffic_red_c / n)});
    summary.addRow({"core-cache traffic red. (zcomp)", "46%",
                    Table::fmtPct(traffic_red_z / n)});
    summary.addRow({"DRAM traffic red. (avx512-comp)", "48%",
                    Table::fmtPct(dram_red_c / dram_shapes)});
    summary.addRow({"DRAM traffic red. (zcomp)", "54%",
                    Table::fmtPct(dram_red_z / dram_shapes)});
    summary.addRow({"avg speedup zcomp vs baseline", "+77%",
                    Table::fmtPct(speed_z / n - 1.0)});
    summary.addRow({"avg speedup zcomp vs avx512-comp", "+56%",
                    Table::fmtPct(speed_z / speed_c - 1.0)});
    summary.addRow({"max zcomp speedup (cache-fit cliff)", "12x",
                    Table::fmt(max_speed_z, 1) + "x"});
    summary.addRow({"shapes where zcomp < baseline", "2",
                    std::to_string(outliers)});
    summary.print(std::cout);
    return 0;
}
