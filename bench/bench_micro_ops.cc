/**
 * @file
 * google-benchmark micro-benchmarks of the functional ZCOMP
 * primitives themselves (host-side throughput of the simulator's
 * building blocks): per-vector compress/expand, whole-buffer
 * streaming, instruction encode/decode, and the assembler.
 */

#include <benchmark/benchmark.h>

#include "isa/assembler.hh"
#include "workload/snapshot.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

namespace {

std::vector<float>
sparseData(size_t n, double sparsity)
{
    SnapshotParams p;
    p.sparsity = sparsity;
    return makeActivations(n, p, 42);
}

void
BM_ZcompsVector(benchmark::State &state)
{
    auto data = sparseData(16, 0.53);
    Vec512 v = Vec512::load(data.data());
    uint8_t buf[66];
    for (auto _ : state) {
        ZcompResult r =
            zcompsInterleaved(v, ElemType::F32, Ccf::EQZ, buf);
        benchmark::DoNotOptimize(r);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ZcompsVector);

void
BM_ZcomplVector(benchmark::State &state)
{
    auto data = sparseData(16, 0.53);
    Vec512 v = Vec512::load(data.data());
    uint8_t buf[66];
    zcompsInterleaved(v, ElemType::F32, Ccf::EQZ, buf);
    Vec512 out;
    for (auto _ : state) {
        ZcompResult r = zcomplInterleaved(buf, ElemType::F32, out);
        benchmark::DoNotOptimize(r);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ZcomplVector);

void
BM_CompressBuffer(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto data = sparseData(n, 0.53);
    std::vector<uint8_t> dst(n * 4 + 2 * (n / 16));
    for (auto _ : state) {
        StreamStats s = compressBufferPs(data.data(), n, dst.data(),
                                         dst.size(), Ccf::EQZ);
        benchmark::DoNotOptimize(s);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_CompressBuffer)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_ExpandBuffer(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto data = sparseData(n, 0.53);
    std::vector<uint8_t> dst(n * 4 + 2 * (n / 16));
    compressBufferPs(data.data(), n, dst.data(), dst.size(), Ccf::EQZ);
    std::vector<float> out(n);
    for (auto _ : state) {
        StreamStats s = expandBufferPs(dst.data(), dst.size(),
                                       out.data(), n);
        benchmark::DoNotOptimize(s);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_ExpandBuffer)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_EncodeDecode(benchmark::State &state)
{
    ZcompInstr instr;
    instr.isStore = true;
    instr.etype = ElemType::F32;
    instr.ccf = Ccf::LTEZ;
    instr.vreg = 1;
    instr.dataPtrReg = 2;
    for (auto _ : state) {
        auto word = encode(instr);
        auto back = decode(*word);
        benchmark::DoNotOptimize(back);
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_Assemble(benchmark::State &state)
{
    std::string line = "zcomps.s.ps [r2], zmm1, [r3], ltez";
    for (auto _ : state) {
        auto instr = assemble(line);
        benchmark::DoNotOptimize(instr);
    }
}
BENCHMARK(BM_Assemble);

} // namespace

BENCHMARK_MAIN();
