/**
 * @file
 * Section 3.2 / 4.1 ablation: interleaved vs separate ZCOMP headers.
 *
 * Interleaved headers keep data + metadata in one stream inside the
 * original allocation (best locality; needs >= 3.125% compressibility
 * or allocation slack). Separate headers decouple the metadata into
 * its own store: no memory-violation risk regardless of
 * compressibility, statically-addressable header reads, but an extra
 * memory stream and its traffic.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"
#include "sim/kernels.hh"

using namespace zcomp;

namespace {

RunStats
runVariant(bool separate, size_t elems, double sparsity)
{
    ArchConfig cfg;
    ExecContext ctx(cfg);
    ReluExperimentConfig rc;
    rc.elems = elems;
    rc.sparsity = sparsity;
    rc.separateHeader = separate;
    return runReluExperiment(ctx, ReluImpl::Zcomp, rc).total();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Section 3.2/4.1 ablation: interleaved vs separate headers");

    Table table("zcomp ReLU + retrieval");
    table.setHeader({"feature map", "sparsity", "interleaved cyc",
                     "separate cyc", "sep overhead", "traffic delta"});
    for (auto [elems, sparsity] :
         std::initializer_list<std::pair<size_t, double>>{
             {16u * 65536u, 0.53},
             {16u * 262144u, 0.53},
             {16u * 1048576u, 0.53},
             {16u * 262144u, 0.10}}) {
        RunStats inter = runVariant(false, elems, sparsity);
        RunStats sep = runVariant(true, elems, sparsity);
        table.addRow(
            {Table::fmtBytes(static_cast<double>(elems) * 4),
             Table::fmtPct(sparsity, 0), Table::fmt(inter.cycles, 0),
             Table::fmt(sep.cycles, 0),
             Table::fmtPct(sep.cycles / inter.cycles - 1.0),
             Table::fmtPct(
                 static_cast<double>(sep.traffic.totalBytes()) /
                     static_cast<double>(inter.traffic.totalBytes()) -
                 1.0)});
    }
    table.print(std::cout);

    std::cout << "\npaper (Section 4.1): with the 49-62% sparsities of "
                 "the profiled DNNs, interleaved\nheaders amortize "
                 "their metadata inside the original allocation and "
                 "are preferred;\nthe separate-header variant removes "
                 "the memory-violation possibility when\ncompressibility "
                 "is unknown, at the cost of an extra metadata "
                 "stream.\n";
    return 0;
}
