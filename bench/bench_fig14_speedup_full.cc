/**
 * @file
 * Figure 14 reproduction: end-to-end speedups on the five full
 * networks, training and inference, for ZCOMP and avx512-comp over
 * the uncompressed baseline.
 *
 * Paper: ZCOMP averages +11% (up to +16%) for training and +3% (up to
 * +5%) for inference; avx512-comp averages +4% (training) and -2%
 * (inference), slowing down 5 of the 10 benchmarks.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 14: full-network speedup");

    auto rows = bench::runFullStudy();

    Table table("speedup vs uncompressed baseline");
    table.setHeader({"network", "mode", "cycles(base)", "avx512-comp",
                     "zcomp"});
    double sp_c[2] = {0, 0}, sp_z[2] = {0, 0};
    double max_z[2] = {0, 0};
    int count[2] = {0, 0}, comp_slowdowns = 0;
    for (const auto &row : rows) {
        double base = row.result("uncompressed").cycles();
        double sc = base / row.result("avx512-comp").cycles();
        double sz = base / row.result("zcomp").cycles();
        int mode = row.training ? 0 : 1;
        sp_c[mode] += sc;
        sp_z[mode] += sz;
        max_z[mode] = std::max(max_z[mode], sz);
        count[mode]++;
        if (sc < 1.0)
            comp_slowdowns++;
        table.addRow({row.model, row.training ? "train" : "infer",
                      Table::fmt(base, 0), Table::fmt(sc, 3) + "x",
                      Table::fmt(sz, 3) + "x"});
    }
    table.print(std::cout);

    Table summary("Figure 14 summary vs paper");
    summary.setHeader({"metric", "paper", "measured"});
    summary.addRow({"avg training speedup (zcomp)", "+11%",
                    Table::fmtPct(sp_z[0] / count[0] - 1.0)});
    summary.addRow({"max training speedup (zcomp)", "+16%",
                    Table::fmtPct(max_z[0] - 1.0)});
    summary.addRow({"avg inference speedup (zcomp)", "+3%",
                    Table::fmtPct(sp_z[1] / count[1] - 1.0)});
    summary.addRow({"avg training speedup (avx512-comp)", "+4%",
                    Table::fmtPct(sp_c[0] / count[0] - 1.0)});
    summary.addRow({"avg inference speedup (avx512-comp)", "-2%",
                    Table::fmtPct(sp_c[1] / count[1] - 1.0)});
    summary.addRow({"benchmarks slowed by avx512-comp", "5 of 10",
                    std::to_string(comp_slowdowns) + " of " +
                        std::to_string(count[0] + count[1])});
    summary.print(std::cout);
    return 0;
}
