/**
 * @file
 * Figure 3 reproduction: memory footprint of the key data structures
 * (inputs / weights / feature maps / gradient maps) for the five DNN
 * training benchmarks at the paper's batch sizes (64; ResNet 128).
 *
 * Footprints are exact - networks are built in a plan-only address
 * space (no host memory), so the paper-scale batches are free.
 *
 * Paper observation: cross-layer feature maps account for the
 * majority of the footprint, gradient maps are the second-largest
 * consumer, and weights are comparatively small.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "Figure 3: memory footprint by data structure (batch 64; "
        "ResNet-32 batch 128)");

    Table table("footprint per network (training allocations)");
    table.setHeader({"network", "inputs", "weights", "feature maps",
                     "gradient maps", "fm+grad share"});
    for (const auto &m : bench::studyModels()) {
        VSpace vs(0x10000, /*allocate_host=*/false);
        ModelOptions opt;
        opt.batch = m.id == ModelId::Resnet32 ? 128 : 64;
        opt.widthScale = m.widthScale;
        auto net = buildModel(m.id, vs, opt);
        net->build(/*training=*/true);
        Network::Footprint f = net->footprint();
        double cross = static_cast<double>(f.featureMapBytes +
                                           f.gradientMapBytes);
        table.addRow(
            {modelName(m.id),
             Table::fmtBytes(static_cast<double>(f.inputBytes)),
             Table::fmtBytes(static_cast<double>(f.weightBytes)),
             Table::fmtBytes(static_cast<double>(f.featureMapBytes)),
             Table::fmtBytes(static_cast<double>(f.gradientMapBytes)),
             Table::fmtPct(cross / static_cast<double>(f.total()))});
    }
    table.print(std::cout);

    std::cout << "\npaper: feature + gradient maps dominate the "
                 "footprint of every training benchmark.\n";
    return 0;
}
