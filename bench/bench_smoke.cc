/**
 * @file
 * Smoke test for the parallel study runner, wired into the tier-1
 * ctest run (`--jobs 2`) so the pool-backed path is exercised on
 * every build: one small model (ResNet-32 at reduced batches), both
 * modes, all three I/O policies, with basic sanity checks on the
 * results. Per-row wall-clock is printed by the runner itself.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "common/table.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv,
        "bench smoke: ResNet-32 study under all three policies");

    bench::StudyOptions opt;
    opt.models = {{ModelId::Resnet32, 4, 2, 0, 1.0}};
    auto rows = bench::runStudy(opt);

    int failures = 0;
    auto check = [&](bool ok, const char *what) {
        if (!ok) {
            std::printf("FAIL: %s\n", what);
            failures++;
        }
    };

    check(rows.size() == 2, "study produced one row per mode");
    Table table("smoke results (cycles / traffic bytes)");
    table.setHeader({"mode", "policy", "cycles", "traffic", "wall ms"});
    for (const auto &row : rows) {
        if (row.status == bench::CellStatus::Failed) {
            // The runner already enforced --fail-budget; within the
            // budget a failed cell just has no numbers to check.
            table.addRow({row.training ? "train" : "infer",
                          "FAILED: " + row.error, "-", "-", "-"});
            continue;
        }
        const auto &pols = bench::studyPolicies();
        for (size_t pi = 0; pi < pols.size(); pi++) {
            const NetworkSimResult &r = row.results[pi];
            check(r.cycles() > 0, "simulated cycles are positive");
            check(r.trafficBytes() > 0, "traffic bytes are positive");
            check(!r.layers.empty(), "per-layer stats were recorded");
            table.addRow({row.training ? "train" : "infer",
                          pols[pi].name,
                          Table::fmt(r.cycles(), 0),
                          Table::fmtBytes(static_cast<double>(
                              r.trafficBytes())),
                          Table::fmt(row.simMillis[pi], 0)});
        }
        check(row.result("zcomp").trafficBytes() <
                  row.result("uncompressed").trafficBytes(),
              "zcomp moves less data than the uncompressed baseline");
    }
    table.print(std::cout);

    if (failures) {
        std::printf("bench_smoke: %d check(s) failed\n", failures);
        return 1;
    }
    std::printf("bench_smoke: all checks passed\n");
    return 0;
}
