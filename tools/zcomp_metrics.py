#!/usr/bin/env python3
"""Analyze zcomp-metrics-v1 telemetry streams (bench --metrics).

Subcommands
-----------
summarize FILE      per-(cell, policy) series statistics - sample and
                    drain counts, cycle span, and the mean/peak of
                    each derived rate - plus the final sweep progress.
plot FILE           ASCII time-series of one derived metric for one
                    series (--cell/--policy select it, defaulting to
                    the first series in the file); --csv PATH also
                    writes (cycle, value) rows for external plotting.
tail FILE           follow the stream like `tail -f`, rendering each
                    record as one human-readable line as it lands
                    (--once drains the current contents and exits,
                    for scripts and tests).

All input is JSONL with one record per line, "kind" of "sample" or
"progress" (see src/common/metrics.hh; zcomp_inspect --metrics
validates the schema strictly - this tool only needs well-formed
lines and skips anything else with a warning).

Usage:
    tools/zcomp_metrics.py summarize run.jsonl
    tools/zcomp_metrics.py plot run.jsonl --metric dramReadBytesPerCycle
    tools/zcomp_metrics.py tail run.jsonl
    tools/zcomp_metrics.py --self-test
"""

import argparse
import json
import os
import sys
import tempfile
import time

SCHEMA = "zcomp-metrics-v1"


def read_records(path):
    """Parse a JSONL stream; returns (records, skipped_count)."""
    records, skipped = [], 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                print(f"warning: {path}:{lineno}: unparseable line "
                      "skipped", file=sys.stderr)
                skipped += 1
                continue
            if not isinstance(rec, dict) or rec.get("schema") != SCHEMA:
                print(f"warning: {path}:{lineno}: not a {SCHEMA} "
                      "record, skipped", file=sys.stderr)
                skipped += 1
                continue
            records.append(rec)
    return records, skipped


def series_key(rec):
    return (rec.get("cell", "?"), rec.get("policy", "?"))


def group_samples(records):
    """(cell, policy) -> list of sample records, in file order."""
    series = {}
    for rec in records:
        if rec.get("kind") == "sample":
            series.setdefault(series_key(rec), []).append(rec)
    return series


# --------------------------------------------------------- summarize


def cmd_summarize(args):
    records, _ = read_records(args.file)
    if not records:
        sys.exit(f"error: {args.file}: no {SCHEMA} records")
    series = group_samples(records)
    progress = [r for r in records if r.get("kind") == "progress"]

    print(f"{args.file}: {len(records)} records "
          f"({sum(len(s) for s in series.values())} samples, "
          f"{len(progress)} progress)")
    for (cell, policy) in sorted(series):
        samples = series[(cell, policy)]
        drains = sum(1 for s in samples if s.get("drain"))
        cycles = [s.get("cycle", 0.0) for s in samples]
        print(f"\n{cell} | {policy}: {len(samples)} samples "
              f"({drains} drain), cycles {min(cycles):.0f}.."
              f"{max(cycles):.0f}")
        metrics = {}
        for s in samples:
            for name, value in s.get("derived", {}).items():
                metrics.setdefault(name, []).append(float(value))
        for name in sorted(metrics):
            vals = metrics[name]
            print(f"  {name:<26} mean {sum(vals) / len(vals):>12.4f}  "
                  f"peak {max(vals):>12.4f}")
    if progress:
        last = progress[-1]
        print(f"\nsweep: {last.get('done', 0):.0f}/"
              f"{last.get('total', 0):.0f} cells "
              f"({last.get('cached', 0):.0f} cached, "
              f"{last.get('failed', 0):.0f} failed, "
              f"{last.get('retried', 0):.0f} retried) at "
              f"{last.get('cellsPerSec', 0):.2f} cells/s")
    return 0


# -------------------------------------------------------------- plot


def render_plot(points, width, height):
    """Rows of an ASCII chart of (cycle, value) points."""
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    # Downsample to the terminal width by averaging per column.
    cols = min(width, len(points))
    per = len(points) / cols
    col_vals = []
    for c in range(cols):
        chunk = values[int(c * per):max(int((c + 1) * per),
                                        int(c * per) + 1)]
        col_vals.append(sum(chunk) / len(chunk))
    rows = []
    for r in range(height, 0, -1):
        cut = lo + span * (r - 0.5) / height
        line = "".join("#" if v >= cut else " " for v in col_vals)
        label = lo + span * r / height
        rows.append(f"{label:>12.4f} |{line}")
    rows.append(" " * 13 + "+" + "-" * cols)
    rows.append(f"{'cycle':>13} {points[0][0]:.0f} .. "
                f"{points[-1][0]:.0f}")
    return rows


def cmd_plot(args):
    records, _ = read_records(args.file)
    series = group_samples(records)
    if not series:
        sys.exit(f"error: {args.file}: no sample records")

    key = None
    for k in sorted(series):
        if ((args.cell is None or k[0] == args.cell)
                and (args.policy is None or k[1] == args.policy)):
            key = k
            break
    if key is None:
        names = ", ".join(f"{c} | {p}" for c, p in sorted(series))
        sys.exit(f"error: no series matches --cell/--policy "
                 f"(have: {names})")

    points = []
    for s in series[key]:
        derived = s.get("derived", {})
        if args.metric in derived:
            points.append((float(s.get("cycle", 0.0)),
                           float(derived[args.metric])))
    if not points:
        have = sorted(series[key][0].get("derived", {}))
        sys.exit(f"error: metric {args.metric!r} not in series "
                 f"(have: {', '.join(have)})")

    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as f:
            f.write(f"cycle,{args.metric}\n")
            for cycle, value in points:
                f.write(f"{cycle!r},{value!r}\n")
        print(f"wrote {len(points)} rows to {args.csv}")

    print(f"{key[0]} | {key[1]} : {args.metric} "
          f"({len(points)} samples)")
    for row in render_plot(points, args.width, args.height):
        print(row)
    return 0


# -------------------------------------------------------------- tail


def format_record(rec):
    kind = rec.get("kind")
    if kind == "sample":
        derived = rec.get("derived", {})
        drain = " (drain)" if rec.get("drain") else ""
        return (f"[{rec.get('cell', '?')} | {rec.get('policy', '?')}] "
                f"cycle {rec.get('cycle', 0):.0f}{drain} "
                f"layer {rec.get('layer', '?')} "
                f"dramR/c {derived.get('dramReadBytesPerCycle', 0):.2f} "
                f"busy {derived.get('zcompBusyFraction', 0):.3f} "
                f"ratio {derived.get('layerCompressionRatio', 0):.2f}")
    if kind == "progress":
        return (f"[sweep] {rec.get('done', 0):.0f}/"
                f"{rec.get('total', 0):.0f} done "
                f"({rec.get('failed', 0):.0f} failed) "
                f"{rec.get('cellsPerSec', 0):.2f} cells/s "
                f"eta {rec.get('etaSec', 0):.0f}s")
    return f"[{kind}] {json.dumps(rec, sort_keys=True)}"


def cmd_tail(args):
    # The sink appends and flushes whole lines, so reading from the
    # last known offset never yields a torn record (a partially
    # flushed trailing line without '\n' is left for the next poll).
    offset = 0
    while True:
        try:
            with open(args.file, encoding="utf-8") as f:
                f.seek(offset)
                chunk = f.read()
        except FileNotFoundError:
            if args.once:
                sys.exit(f"error: {args.file}: no such file")
            time.sleep(args.interval)
            continue
        keep = chunk.rfind("\n") + 1
        offset += keep
        for line in chunk[:keep].splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            print(format_record(rec), flush=True)
        if args.once:
            return 0
        time.sleep(args.interval)


# --------------------------------------------------------- self-test


def make_stream(path):
    records = []
    for i in range(1, 9):
        records.append({
            "schema": SCHEMA, "kind": "sample", "cell": "resnet",
            "policy": "zcomp", "cycle": 100.0 * i, "window": 100.0,
            "layer": f"conv{i}",
            "counters": {"mem.dram.bytes_read": 400 * i},
            "derived": {"dramReadBytesPerCycle": 4.0 * i,
                        "zcompBusyFraction": 0.25,
                        "layerCompressionRatio": 2.0},
            "hostMs": 1.5 * i,
        })
    records[-1]["drain"] = True
    records.append({
        "schema": SCHEMA, "kind": "progress", "done": 2, "total": 2,
        "cached": 1, "failed": 0, "retried": 0, "cellsPerSec": 0.5,
        "etaSec": 0.0, "hostMs": 20.0,
    })
    with open(path, "w", encoding="utf-8") as f:
        for rec in records:
            f.write(json.dumps(rec) + "\n")
        f.write("this line is not JSON\n")
    return records


def self_test():
    import contextlib
    import io

    failures = []

    def check(name, cond):
        if not cond:
            failures.append(name)
            print(f"self-test: FAIL {name}")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "run.jsonl")
        make_stream(path)

        records, skipped = read_records(path)
        check("skips non-schema lines", skipped == 1)
        check("reads all records", len(records) == 9)

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            cmd_summarize(argparse.Namespace(file=path))
        text = out.getvalue()
        check("summarize names the series", "resnet | zcomp" in text)
        check("summarize counts samples", "8 samples (1 drain)" in text)
        check("summarize mean is right",
              "dramReadBytesPerCycle" in text and "18.0000" in text)
        check("summarize reports sweep", "2/2 cells" in text)

        csv_path = os.path.join(tmp, "out.csv")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            cmd_plot(argparse.Namespace(
                file=path, metric="dramReadBytesPerCycle", cell=None,
                policy=None, width=40, height=5, csv=csv_path))
        text = out.getvalue()
        check("plot draws bars", "#" in text)
        check("plot labels the cycle span", "100 .. 800" in text)
        with open(csv_path, encoding="utf-8") as f:
            rows = f.read().splitlines()
        check("csv has header + 8 rows", len(rows) == 9
              and rows[0] == "cycle,dramReadBytesPerCycle")

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            cmd_tail(argparse.Namespace(file=path, once=True,
                                        interval=0.01))
        lines = out.getvalue().splitlines()
        check("tail renders every record", len(lines) == 9)
        check("tail marks the drain", any("(drain)" in l for l in lines))
        check("tail renders progress",
              any(l.startswith("[sweep] 2/2") for l in lines))

        missing = io.StringIO()
        with contextlib.redirect_stdout(missing):
            try:
                cmd_plot(argparse.Namespace(
                    file=path, metric="nope", cell=None, policy=None,
                    width=40, height=5, csv=None))
                check("plot rejects unknown metric", False)
            except SystemExit as e:
                check("plot rejects unknown metric",
                      "nope" in str(e.code))

    print("self-test: %s" % ("PASS" if not failures else
                             "FAIL (%d)" % len(failures)))
    return 0 if not failures else 1


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture tests")
    sub = ap.add_subparsers(dest="cmd")

    p = sub.add_parser("summarize", help="per-series statistics")
    p.add_argument("file")

    p = sub.add_parser("plot", help="ASCII time-series of one metric")
    p.add_argument("file")
    p.add_argument("--metric", default="dramReadBytesPerCycle",
                   help="derived metric name (default: "
                        "dramReadBytesPerCycle)")
    p.add_argument("--cell", default=None,
                   help="cell label (default: first series)")
    p.add_argument("--policy", default=None,
                   help="policy name (default: first series)")
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--height", type=int, default=12)
    p.add_argument("--csv", default=None,
                   help="also write cycle,value rows to this path")

    p = sub.add_parser("tail", help="follow the stream live")
    p.add_argument("file")
    p.add_argument("--interval", type=float, default=0.5,
                   help="poll interval in seconds (default 0.5)")
    p.add_argument("--once", action="store_true",
                   help="drain the current contents and exit")

    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if args.cmd == "summarize":
        return cmd_summarize(args)
    if args.cmd == "plot":
        return cmd_plot(args)
    if args.cmd == "tail":
        return cmd_tail(args)
    ap.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
