#!/usr/bin/env python3
"""Compare two bench_perf BENCH_*.json snapshots and gate regressions.

Usage:
    bench_perf.py compare BASELINE.json NEW.json [--threshold 0.05]

Exit status 1 when any throughput rate fell, or any wall-clock rose,
by more than the threshold fraction relative to the baseline; 0
otherwise. Two snapshots are only fully comparable when they come
from the same host and the same mode:

  - different host (``host.node``): every comparison is advisory -
    findings are printed as warnings and the exit status stays 0,
    because cross-host rates say nothing about a code regression;
  - different ``quick`` flags (a --quick CI run against a committed
    full-mode baseline): the figure subset differs, so only the
    micro-kernel rates - which are size-invariant throughputs - are
    gated, and the figure numbers are skipped with a note.

Schema: zcomp-bench-perf-v1 (see EXPERIMENTS.md, "bench_perf
trajectory").
"""

import argparse
import json
import sys

SCHEMA = "zcomp-bench-perf-v1"

# metric path -> direction ("rate": higher is better, "time": lower
# is better). Figure metrics are per named figure subset.
MICRO_METRICS = {
    "vecRoundTripsPerSec": "rate",
    "fpcLinesPerSec": "rate",
    "ebpcLinesPerSec": "rate",
    "zvcLinesPerSec": "rate",
    "gemmMacsPerSec": "rate",
}
FIGURE_METRICS = {
    "wallSeconds": "time",
    "cellsPerSec": "rate",
    # Wall-clock ratio of the same subset with --metrics sampling on
    # vs off (1.0 = telemetry is free); compared only when both
    # snapshots recorded it.
    "metricsOverheadRatio": "time",
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    return doc


def compare_value(label, direction, old, new, threshold, findings):
    if old <= 0:
        return
    if direction == "rate":
        change = (new - old) / old
        regressed = change < -threshold
    else:
        change = (new - old) / old
        regressed = change > threshold
    if regressed:
        findings.append(
            f"{label}: {old:.6g} -> {new:.6g} ({change:+.1%}, "
            f"threshold {threshold:.0%})"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)
    cmp_p = sub.add_parser("compare", help="gate NEW against BASELINE")
    cmp_p.add_argument("baseline")
    cmp_p.add_argument("new")
    cmp_p.add_argument("--threshold", type=float, default=0.05,
                       help="regression fraction (default 0.05)")
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new)

    advisory = False
    if base.get("host", {}).get("node") != new.get("host", {}).get("node"):
        print(
            "warning: snapshots come from different hosts "
            f"({base.get('host', {}).get('node')!r} vs "
            f"{new.get('host', {}).get('node')!r}); comparison is "
            "advisory only"
        )
        advisory = True

    figures_comparable = base.get("quick") == new.get("quick")
    if not figures_comparable:
        print(
            "note: quick flags differ "
            f"({base.get('quick')} vs {new.get('quick')}); figure "
            "subsets are not comparable - gating micro rates only"
        )

    base_bk = {b["backend"]: b for b in base.get("backends", [])}
    new_bk = {b["backend"]: b for b in new.get("backends", [])}
    findings = []
    compared = 0

    for name in sorted(base_bk):
        if name not in new_bk:
            print(f"warning: backend {name!r} missing from {args.new}")
            continue
        ob, nb = base_bk[name], new_bk[name]
        for metric, direction in MICRO_METRICS.items():
            if metric in ob.get("micro", {}) and metric in nb.get("micro", {}):
                compare_value(
                    f"{name}.micro.{metric}", direction,
                    ob["micro"][metric], nb["micro"][metric],
                    args.threshold, findings,
                )
                compared += 1
        if not figures_comparable:
            continue
        for fig in sorted(ob.get("figures", {})):
            if fig not in nb.get("figures", {}):
                print(f"warning: figure {fig!r} missing from {args.new}")
                continue
            for metric, direction in FIGURE_METRICS.items():
                if metric in ob["figures"][fig] and metric in nb["figures"][fig]:
                    compare_value(
                        f"{name}.figures.{fig}.{metric}", direction,
                        ob["figures"][fig][metric],
                        nb["figures"][fig][metric],
                        args.threshold, findings,
                    )
                    compared += 1

    if compared == 0:
        sys.exit("error: no comparable metrics between the two snapshots")

    if findings:
        kind = "advisory (cross-host)" if advisory else "REGRESSION"
        for f in findings:
            print(f"{kind}: {f}")
        if not advisory:
            print(f"bench_perf.py: {len(findings)} regression(s) "
                  f"across {compared} metric(s)")
            sys.exit(1)
    print(f"bench_perf.py: ok ({compared} metric(s) compared, "
          f"{len(findings)} advisory finding(s))")


if __name__ == "__main__":
    main()
