#!/usr/bin/env python3
"""Project-specific static checks for the zcomp tree.

Rules
-----
cmake-registration  every .cc/.cpp is referenced by a CMakeLists.txt
                    (same directory or an ancestor), so sources cannot
                    silently drop out of the build.
header-guard        every .hh uses either #pragma once or a
                    well-formed #ifndef/#define guard whose macro is
                    derived from the path (ZCOMP_<DIR>_<FILE>_HH).
using-namespace     no `using namespace` at header scope; it leaks
                    into every includer.
stat-names          within a file, the same receiver must not register
                    two stats with the same name (addCounter /
                    addHistogram) - duplicate names silently shadow
                    each other in reports.
raw-new             no raw `new` / `delete` outside explicitly
                    annotated ownership-handoff sites; everything else
                    uses containers or smart pointers.
rng                 no rand()/srand()/std::mt19937/... - all
                    randomness flows through common/rng.hh so studies
                    stay reproducible and seedable.
catch-swallow       no `catch (...)` whose body neither rethrows,
                    captures std::current_exception, nor logs - silent
                    swallows hide real faults from the fault-injection
                    and retry machinery.
simd-isolation      no direct <immintrin.h>/<x86intrin.h> include
                    outside src/common/simd.cc - everything else goes
                    through the runtime-dispatched common/simd.hh API
                    so the rest of the tree stays baseline-ISA and the
                    scalar/SIMD differential tests cover every vector
                    code path.
metrics-names       the leaf segment of every addCounterProbe()
                    pattern must name a counter somewhere registered
                    via addCounter(), so telemetry probes cannot
                    silently drift away from the stats tree and read
                    zeros forever.
raw-mutex           no std::mutex / std::lock_guard / std::
                    condition_variable etc. outside
                    src/common/annotate.hh - all locking goes through
                    the capability-annotated zcomp::Mutex/LockGuard/
                    CondVar wrappers so clang's -Wthread-safety can
                    prove the lock discipline of every critical
                    section.
unordered-iteration no range-for / .begin() iteration over
                    std::unordered_{map,set} in src/ or bench/ - the
                    hash order is implementation- and run-dependent,
                    so any iteration feeding stats, reports, metrics,
                    or traces silently breaks the byte-identical
                    output contract. Probing (find/count/at/emplace)
                    is fine; iterate an ordered mirror or switch the
                    container.
wall-clock          reads of wall/monotonic clocks (chrono clocks'
                    now(), time(), gettimeofday, ...) confined to the
                    host-domain allowlist (bench/tools/tests harness
                    code and the report/metrics/trace host stamps).
                    Simulated time comes from the event queue;
                    sim-domain code reading a host clock is
                    nondeterminism by construction.
raw-rand            no C-library randomness (drand48 family, random(),
                    rand_r, arc4random*, getentropy) anywhere outside
                    common/rng.hh; complements the `rng` rule (which
                    bans rand()/std:: engines) so every random draw is
                    seeded and reproducible.
scheme-registration every src/cachecomp/*.cc that defines a
                    CompressionScheme subclass must also call
                    registerScheme() - a scheme that never reaches
                    the registry silently drops out of the Figure 15
                    tables, report rows, and result-cache keys.
process-isolation   no raw process primitives (fork/exec*/kill/
                    waitpid/popen/system/...) outside
                    src/common/subprocess.{hh,cc} - all child
                    processes go through the Subprocess wrapper so
                    every child is reaped, deadline-bounded, and
                    status-decoded; stray fork/kill calls are how
                    zombies and orphaned grandchildren happen.
                    Member calls (p.kill(), proc->kill()) are fine.

A finding on line N is suppressed by a comment
    // zcomp-lint: allow(<rule>)
on line N or N-1.

Usage:
    tools/zcomp_lint.py [--root DIR]     lint the tree (exit 1 on findings)
    tools/zcomp_lint.py --self-test      run the built-in fixture tests
    tools/zcomp_lint.py --github         also emit GitHub workflow
                                         ::error annotations (auto when
                                         GITHUB_ACTIONS is set)
"""

import argparse
import os
import re
import sys
import tempfile

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTS = (".cc", ".cpp")
HEADER_EXTS = (".hh",)

SUPPRESS_RE = re.compile(r"zcomp-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, rule, path, line, message, col=0):
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col          # 1-based; 0 = whole line
        self.message = message

    def __str__(self):
        if self.col:
            return "%s:%d:%d: [%s] %s" % (self.path, self.line,
                                          self.col, self.rule,
                                          self.message)
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def github(self):
        """GitHub workflow-command annotation (shows inline in PRs)."""
        loc = "file=%s,line=%d" % (self.path, self.line)
        if self.col:
            loc += ",col=%d" % self.col
        msg = self.message.replace("%", "%25").replace("\n", "%0A")
        return "::error %s,title=zcomp-lint(%s)::%s" % (
            loc, self.rule, msg)


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def suppressed_lines(lines, rule):
    """1-based line numbers where `rule` findings are allowed."""
    out = set()
    for i, line in enumerate(lines, start=1):
        for m in SUPPRESS_RE.finditer(line):
            if m.group(1) == rule:
                out.add(i)
                out.add(i + 1)
    return out


def strip_comments_and_strings(lines, keep_strings=False):
    """Blank out comments (and, unless keep_strings, string/char
    literals), keeping line structure so findings still point at the
    right line."""
    text = "\n".join(lines)
    out = []
    i = 0
    n = len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # inside a literal
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif keep_strings:
                out.append(c)
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out).splitlines()


def iter_files(root, exts):
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "build"]
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


# ------------------------------------------------------------- rules


def check_cmake_registration(root, findings):
    for path in iter_files(root, SOURCE_EXTS):
        name = os.path.basename(path)
        stem = os.path.splitext(name)[0]
        pat = re.compile(r"\b%s\b" % re.escape(stem))
        registered = False
        d = os.path.dirname(path)
        while True:
            cml = os.path.join(d, "CMakeLists.txt")
            if os.path.isfile(cml):
                if pat.search("\n".join(read_lines(cml))):
                    registered = True
                    break
            if os.path.samefile(d, root):
                break
            d = os.path.dirname(d)
        if not registered:
            findings.append(Finding(
                "cmake-registration", relpath(root, path), 1,
                "%s is not referenced by any CMakeLists.txt" % name))


def guard_macro_for(root, path):
    rel = relpath(root, path)
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    macro = re.sub(r"[^A-Za-z0-9]", "_", rel[:-len(".hh")]).upper()
    return "ZCOMP_%s_HH" % macro


def check_header_guard(root, findings):
    for path in iter_files(root, HEADER_EXTS):
        lines = read_lines(path)
        text = "\n".join(lines)
        if re.search(r"^\s*#\s*pragma\s+once\b", text, re.M):
            continue
        want = guard_macro_for(root, path)
        m = re.search(r"^\s*#\s*ifndef\s+(\w+)", text, re.M)
        rel = relpath(root, path)
        if not m:
            findings.append(Finding(
                "header-guard", rel, 1,
                "no #pragma once or #ifndef include guard"))
            continue
        got = m.group(1)
        lineno = text[:m.start()].count("\n") + 1
        if got != want:
            findings.append(Finding(
                "header-guard", rel, lineno,
                "guard %s does not match path (want %s)" % (got, want)))
        elif not re.search(r"^\s*#\s*define\s+%s\b" % re.escape(got),
                           text, re.M):
            findings.append(Finding(
                "header-guard", rel, lineno,
                "guard %s has no matching #define" % got))


def check_using_namespace(root, findings):
    for path in iter_files(root, HEADER_EXTS):
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "using-namespace")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            m = re.search(r"\busing\s+namespace\b", line)
            if m and i not in allowed:
                findings.append(Finding(
                    "using-namespace", relpath(root, path), i,
                    "using namespace in a header leaks into includers",
                    m.start() + 1))


STAT_RE = re.compile(
    r"([A-Za-z_][\w\[\]\.\->]*(?:\(\))?)\s*[\.\->]+\s*"
    r"(addCounter|addHistogram)\s*\(\s*\"([^\"]+)\"")


def check_stat_names(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "stat-names")
        seen = {}
        stripped = strip_comments_and_strings(lines, keep_strings=True)
        for i, line in enumerate(stripped, start=1):
            for m in STAT_RE.finditer(line):
                key = (m.group(1), m.group(2), m.group(3))
                if key in seen and i not in allowed:
                    findings.append(Finding(
                        "stat-names", relpath(root, path), i,
                        "duplicate stat \"%s\" on receiver %s "
                        "(first at line %d)"
                        % (m.group(3), m.group(1), seen[key]),
                        m.start() + 1))
                seen.setdefault(key, i)


NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![\w.=])\bdelete\b(?!\s*[;,)\]]*\s*$|\s*\[)")


def check_raw_new(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        if not relpath(root, path).startswith("src/"):
            continue        # tests/benches may allocate as they like
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "raw-new")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            if i in allowed:
                continue
            # `= delete` / `= delete;` declarations are fine.
            code = re.sub(r"=\s*delete\b", "", line)
            m = NEW_RE.search(code)
            if m:
                findings.append(Finding(
                    "raw-new", relpath(root, path), i,
                    "raw new; use containers/smart pointers or "
                    "annotate the ownership handoff", m.start() + 1))
            else:
                m = re.search(r"\bdelete\b", code)
                if m:
                    findings.append(Finding(
                        "raw-new", relpath(root, path), i,
                        "raw delete; use containers/smart pointers "
                        "or annotate the ownership handoff",
                        m.start() + 1))


RNG_RE = re.compile(
    r"\b(s?rand)\s*\(|\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|"
    r"default_random_engine|random_device)\b")


def check_rng(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        rel = relpath(root, path)
        if rel.startswith("src/common/rng."):
            continue        # the sanctioned RNG implementation
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "rng")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            m = RNG_RE.search(line)
            if m and i not in allowed:
                findings.append(Finding(
                    "rng", rel, i,
                    "unseeded/ad-hoc RNG; use common/rng.hh so runs "
                    "stay reproducible", m.start() + 1))


CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
# A catch-all body is fine if it rethrows, keeps the exception, or at
# least reports it somewhere a human or the retry loop can see.
CATCH_EVIDENCE_RE = re.compile(
    r"\b(throw|current_exception|rethrow_exception|abort|exit|"
    r"warn|inform|fatal|panic|fprintf|printf|cerr|clog|log)\b")


def check_catch_swallow(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "catch-swallow")
        text = "\n".join(strip_comments_and_strings(lines))
        for m in CATCH_ALL_RE.finditer(text):
            lineno = text[:m.start()].count("\n") + 1
            if lineno in allowed:
                continue
            open_brace = text.find("{", m.end())
            if open_brace < 0:
                continue
            depth = 0
            end = -1
            for j in range(open_brace, len(text)):
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        end = j
                        break
            body = text[open_brace + 1:end] if end >= 0 \
                else text[open_brace + 1:]
            if not CATCH_EVIDENCE_RE.search(body):
                col = m.start() - text.rfind("\n", 0, m.start())
                findings.append(Finding(
                    "catch-swallow", relpath(root, path), lineno,
                    "catch (...) swallows the exception silently; "
                    "rethrow, keep current_exception, or log it",
                    col))


INTRIN_RE = re.compile(
    r"^\s*#\s*include\s*[<\"]\s*(immintrin|x86intrin|xmmintrin|"
    r"emmintrin|pmmintrin|tmmintrin|smmintrin|nmmintrin|wmmintrin|"
    r"avxintrin|avx2intrin|avx512\w*intrin|arm_neon)\s*\.h\s*[>\"]")
SIMD_HOME = "src/common/simd.cc"


def check_simd_isolation(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        rel = relpath(root, path)
        if rel == SIMD_HOME:
            continue        # the one sanctioned home for intrinsics
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "simd-isolation")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            m = INTRIN_RE.search(line)
            if m and i not in allowed:
                findings.append(Finding(
                    "simd-isolation", rel, i,
                    "vector intrinsics header outside %s; use the "
                    "dispatched common/simd.hh API" % SIMD_HOME,
                    m.start() + 1))


COUNTER_DEF_RE = re.compile(r"\baddCounter\s*\(\s*\"([^\"]+)\"")
PROBE_RE = re.compile(r"\baddCounterProbe\s*\(\s*\"([^\"]+)\"")


def check_metrics_names(root, findings):
    """Probe patterns are validated against the union of every
    addCounter() literal in the tree (a leaf ending in '*' must
    prefix-match at least one); a probe whose leaf matches nothing
    would sum an empty set and report zero forever."""
    files = list(iter_files(root, SOURCE_EXTS + HEADER_EXTS))
    registered = set()
    for path in files:
        stripped = strip_comments_and_strings(read_lines(path),
                                              keep_strings=True)
        for line in stripped:
            for m in COUNTER_DEF_RE.finditer(line):
                registered.add(m.group(1))
    for path in files:
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "metrics-names")
        stripped = strip_comments_and_strings(lines, keep_strings=True)
        for i, line in enumerate(stripped, start=1):
            for m in PROBE_RE.finditer(line):
                leaf = m.group(1).rsplit(".", 1)[-1]
                if leaf.endswith("*"):
                    ok = any(n.startswith(leaf[:-1])
                             for n in registered)
                else:
                    ok = leaf in registered
                if not ok and i not in allowed:
                    findings.append(Finding(
                        "metrics-names", relpath(root, path), i,
                        "probe \"%s\": leaf \"%s\" is not a "
                        "registered addCounter() name"
                        % (m.group(1), leaf), m.start() + 1))


MUTEX_HOME = "src/common/annotate.hh"
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?)\b")


def check_raw_mutex(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        rel = relpath(root, path)
        if rel == MUTEX_HOME:
            continue    # the annotated wrappers' own implementation
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "raw-mutex")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            m = RAW_MUTEX_RE.search(line)
            if m and i not in allowed:
                findings.append(Finding(
                    "raw-mutex", rel, i,
                    "std::%s outside %s; use zcomp::Mutex/LockGuard/"
                    "CondVar so -Wthread-safety covers the critical "
                    "section" % (m.group(1), MUTEX_HOME),
                    m.start() + 1))


# Host-domain code that is allowed to read wall clocks: the bench /
# tools / tests harness layer, and the host-timestamp fields of the
# telemetry sinks (report wallMillis, metrics hostMs, trace-span
# timestamps). None of these feed the deterministic study stdout.
WALL_CLOCK_ALLOWED_PREFIXES = (
    "bench/", "tools/", "tests/", "examples/",
    "src/common/metrics.", "src/common/report.",
    "src/common/trace_writer.", "src/common/result_cache.",
    # Process supervision is host-domain by nature: grace windows,
    # hard deadlines, and heartbeat ages are wall-clock quantities.
    "src/common/subprocess.", "src/common/sweep_supervisor.",
)
WALL_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*"
    r"(?:system_clock|steady_clock|high_resolution_clock)\b|"
    r"\b(?:system_clock|steady_clock|high_resolution_clock)"
    r"\s*::\s*now\b|"
    # time() always takes an argument, so requiring one skips
    # declarations/calls of simulated-time accessors like
    # `double time() const`.
    r"(?<![\w.>:])(?:std\s*::\s*)?time\s*\(\s*"
    r"(?:NULL\b|nullptr\b|0\b|&)|"
    r"\b(?:gettimeofday|clock_gettime|timespec_get|ftime)\s*\(")


def check_wall_clock(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        rel = relpath(root, path)
        if rel.startswith(WALL_CLOCK_ALLOWED_PREFIXES):
            continue
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "wall-clock")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            m = WALL_CLOCK_RE.search(line)
            if m and i not in allowed:
                findings.append(Finding(
                    "wall-clock", rel, i,
                    "wall-clock read in sim-domain code; simulated "
                    "time comes from the event queue (host stamps "
                    "belong in the allowlisted telemetry sinks)",
                    m.start() + 1))


RNG_HOME_PREFIX = "src/common/rng."
RAW_RAND_RE = re.compile(
    r"(?<![\w.:>])(?:drand48|erand48|lrand48|nrand48|mrand48|"
    r"jrand48|srand48|seed48|lcong48|rand_r|random|srandom|"
    r"initstate|arc4random(?:_buf|_uniform)?|getentropy)\s*\(")


def check_raw_rand(root, findings):
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        rel = relpath(root, path)
        if rel.startswith(RNG_HOME_PREFIX):
            continue    # the sanctioned RNG implementation
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "raw-rand")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            m = RAW_RAND_RE.search(line)
            if m and i not in allowed:
                findings.append(Finding(
                    "raw-rand", rel, i,
                    "C-library randomness; draw from common/rng.hh "
                    "so every sequence is seeded and reproducible",
                    m.start() + 1))


UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")


def unordered_decl_names(text):
    """Names declared (variable, member, parameter) with an
    unordered-container type, found by bracket-matching the template
    argument list and reading the declarator(s) after it."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        depth = 1
        j = m.end()
        while j < len(text) and depth:
            if text[j] == "<":
                depth += 1
            elif text[j] == ">":
                depth -= 1
            j += 1
        # Declarators up to the statement end: `x;`, `x = ...`,
        # `x, y;`, `&x)`, `x{...}`. A '(' right after an identifier
        # is a function returning the container - not a name whose
        # iteration we could see anyway.
        tail = text[j:]
        end = len(tail)
        for stop in ";={(":
            k = tail.find(stop)
            if 0 <= k < end:
                end = k
        for dm in re.finditer(r"[A-Za-z_]\w*", tail[:end]):
            if dm.group(0) not in ("const", "constexpr", "static",
                                   "mutable", "inline"):
                names.add(dm.group(0))
    return names


def check_unordered_iteration(root, findings):
    """Iterating an unordered container exposes its hash order, which
    varies across libraries and runs; in src/ and bench/ that order
    must never reach stats, reports, metrics, traces, or stdout.
    Lookup-only use (find/count/at/emplace) is fine."""
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        rel = relpath(root, path)
        if not rel.startswith(("src/", "bench/")):
            continue
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "unordered-iteration")
        stripped = strip_comments_and_strings(lines)
        text = "\n".join(stripped)
        names = unordered_decl_names(text)
        if not names:
            continue
        pat = "|".join(re.escape(n) for n in sorted(names))
        iter_re = re.compile(
            # range-for whose range expression is a tracked name...
            r"for\s*\([^;()]*:\s*&?\s*(?:%s)\s*\)|"
            # ...or an explicit iterator walk off a tracked name.
            r"\b(?:%s)\s*\.\s*c?r?begin\s*\(" % (pat, pat))
        for m in iter_re.finditer(text):
            lineno = text[:m.start()].count("\n") + 1
            if lineno in allowed:
                continue
            col = m.start() - text.rfind("\n", 0, m.start())
            findings.append(Finding(
                "unordered-iteration", rel, lineno,
                "iteration over an unordered container leaks hash "
                "order into sim-domain code; use an ordered "
                "container or probe with find()/at() only", col))


SCHEME_SUBCLASS_RE = re.compile(
    r":\s*(?:public\s+)?(?:zcomp\s*::\s*)?CompressionScheme\b")
SCHEME_REGISTER_RE = re.compile(r"\bregisterScheme\s*\(")


def check_scheme_registration(root, findings):
    """A cachecomp source defining a CompressionScheme subclass must
    register it; an unregistered scheme is invisible to allSchemes()
    and silently missing from every table, report row, and cache key
    keyed off the registry."""
    for path in iter_files(root, SOURCE_EXTS):
        rel = relpath(root, path)
        if not rel.startswith("src/cachecomp/"):
            continue
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "scheme-registration")
        stripped = strip_comments_and_strings(lines)
        if SCHEME_REGISTER_RE.search("\n".join(stripped)):
            continue
        for i, line in enumerate(stripped, start=1):
            m = SCHEME_SUBCLASS_RE.search(line)
            if m and i not in allowed:
                findings.append(Finding(
                    "scheme-registration", rel, i,
                    "CompressionScheme subclass in a file that never "
                    "calls registerScheme(); the scheme would be "
                    "missing from allSchemes() tables and cache keys",
                    m.start() + 1))


# The one sanctioned home for raw process plumbing: the Subprocess
# wrapper's own header and implementation.
SUBPROCESS_HOME_PREFIX = "src/common/subprocess."
RAW_PROCESS_RE = re.compile(
    # Either a globally-qualified call (::kill) or a plain call that
    # is not a member access (p.kill() / proc->kill() are the
    # sanctioned wrapper API, not a raw primitive).
    r"(?:(?<=::)|(?<![\w.:>]))"
    r"(vfork|fork|execvpe|execvp|execve|execv|execlp|execle|execl|"
    r"posix_spawnp|posix_spawn|killpg|kill|waitpid|wait4|wait3|"
    r"popen|system)\s*\(")


def check_process_isolation(root, findings):
    """A raw fork/exec/kill/waitpid anywhere else bypasses the
    Subprocess wrapper's guarantees (O_CLOEXEC pipes, non-blocking
    reads, SIGTERM->SIGKILL escalation, guaranteed reap) and is how
    zombies and orphaned grandchildren get minted."""
    for path in iter_files(root, SOURCE_EXTS + HEADER_EXTS):
        rel = relpath(root, path)
        if rel.startswith(SUBPROCESS_HOME_PREFIX):
            continue
        lines = read_lines(path)
        allowed = suppressed_lines(lines, "process-isolation")
        for i, line in enumerate(strip_comments_and_strings(lines),
                                 start=1):
            m = RAW_PROCESS_RE.search(line)
            if m and i not in allowed:
                findings.append(Finding(
                    "process-isolation", rel, i,
                    "raw %s(); spawn/signal/reap through "
                    "common/subprocess.hh so every child is reaped, "
                    "deadline-bounded and status-decoded"
                    % m.group(1), m.start() + 1))


ALL_RULES = [
    check_cmake_registration,
    check_header_guard,
    check_using_namespace,
    check_stat_names,
    check_raw_new,
    check_rng,
    check_catch_swallow,
    check_simd_isolation,
    check_metrics_names,
    check_raw_mutex,
    check_wall_clock,
    check_raw_rand,
    check_unordered_iteration,
    check_scheme_registration,
    check_process_isolation,
]


def run_lint(root):
    findings = []
    for rule in ALL_RULES:
        rule(root, findings)
    return findings


# --------------------------------------------------------- self-test


def write(path, content):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def self_test():
    """Lint a fixture tree seeded with one violation per rule and a
    clean file; every rule must fire exactly where expected."""
    with tempfile.TemporaryDirectory() as root:
        write(os.path.join(root, "src", "CMakeLists.txt"),
              "add_library(x STATIC clean.cc dup_stats.cc raw_new.cc\n"
              "    bad_rng.cc annotated.cc catch_swallow.cc\n"
              "    stray_intrin.cc metrics_probe.cc common/simd.cc\n"
              "    raw_mutex.cc wall_clock.cc raw_rand.cc\n"
              "    unordered_iter.cc cachecomp/scheme_good.cc\n"
              "    cachecomp/scheme_bad.cc unregistered_elsewhere.cc\n"
              "    proc_raw.cc common/subprocess.cc)\n")
        write(os.path.join(root, "bench", "CMakeLists.txt"),
              "add_executable(timer timer.cc)\n")
        write(os.path.join(root, "src", "clean.cc"),
              '#include "clean.hh"\n'
              "// new Widget in a comment is fine\n"
              'const char *s = "no new Widget here either";\n')
        write(os.path.join(root, "src", "clean.hh"),
              "#ifndef ZCOMP_CLEAN_HH\n#define ZCOMP_CLEAN_HH\n"
              "class C { C(const C &) = delete; };\n"
              "#endif\n")
        write(os.path.join(root, "src", "orphan.cc"), "int x;\n")
        write(os.path.join(root, "src", "bad_guard.hh"),
              "#ifndef WRONG_NAME_HH\n#define WRONG_NAME_HH\n#endif\n")
        write(os.path.join(root, "src", "no_guard.hh"), "int y;\n")
        write(os.path.join(root, "src", "leaky.hh"),
              "#pragma once\nusing namespace std;\n")
        write(os.path.join(root, "src", "dup_stats.cc"),
              'void f(G &g) {\n'
              '    g.addCounter("hits");\n'
              '    g.addCounter("hits");\n'
              '    g.addHistogram("hits");\n'   # other kind: no dup
              '}\n')
        write(os.path.join(root, "src", "raw_new.cc"),
              "int *p = new int(3);\n"
              "void g(int *q) { delete q; }\n")
        write(os.path.join(root, "src", "annotated.cc"),
              "// zcomp-lint: allow(raw-new)\n"
              "int *p = new int(3);\n")
        write(os.path.join(root, "src", "bad_rng.cc"),
              "#include <random>\n"
              "std::mt19937 gen;\n"
              "int r() { return rand(); }\n")
        write(os.path.join(root, "src", "catch_swallow.cc"),
              "void swallows() {\n"
              "    try { work(); } catch (...) {\n"
              "        int cleanup = 0;\n"          # silent: flagged
              "        (void)cleanup;\n"
              "    }\n"
              "}\n"
              "void rethrows() {\n"
              "    try { work(); } catch (...) { throw; }\n"
              "}\n"
              "void keeps() {\n"
              "    try { work(); } catch (...) {\n"
              "        e = std::current_exception();\n"
              "    }\n"
              "}\n"
              "void logs() {\n"
              "    try { work(); } catch (...) {\n"
              '        warn("cell fault");\n'
              "    }\n"
              "}\n"
              "void annotated() {\n"
              "    // zcomp-lint: allow(catch-swallow)\n"
              "    try { work(); } catch (...) {}\n"
              "}\n")

        write(os.path.join(root, "src", "stray_intrin.cc"),
              "// #include <immintrin.h> in a comment is fine\n"
              "#include <immintrin.h>\n"
              "#include <x86intrin.h>\n"
              "// zcomp-lint: allow(simd-isolation)\n"
              "#include <emmintrin.h>\n")
        write(os.path.join(root, "src", "common", "simd.cc"),
              "#include <immintrin.h>\n")
        write(os.path.join(root, "src", "metrics_probe.cc"),
              "void probes(S &s) {\n"
              '    s.addCounterProbe("mem.l1_*.hits");\n'     # ok
              '    s.addCounterProbe("mem.bogus_counter");\n'  # flagged
              '    s.addCounterProbe("core*.hit*");\n'         # prefix ok
              "    // zcomp-lint: allow(metrics-names)\n"
              '    s.addCounterProbe("suppressed_leaf");\n'
              "}\n")

        write(os.path.join(root, "src", "raw_mutex.cc"),
              "std::mutex rawMu;\n"                       # flagged
              "void f() { zcomp::LockGuard lk(m); }\n"           # fine
              "std::condition_variable rawCv;\n"          # flagged
              "// zcomp-lint: allow(raw-mutex)\n"
              "std::unique_lock<std::mutex> special;\n"   # suppressed
              "zcomp::Mutex fine;\n")
        # The wrappers' own implementation file is exempt.
        write(os.path.join(root, "src", "common", "annotate.hh"),
              "#pragma once\n"
              "std::mutex mu_;\n"
              "std::condition_variable cv_;\n")
        write(os.path.join(root, "src", "wall_clock.cc"),
              "auto t0 = std::chrono::steady_clock::now();\n"  # flagged
              "double t1 = time(nullptr);\n"                   # flagged
              "double simNow = core->time();\n"         # member: fine
              "// zcomp-lint: allow(wall-clock)\n"
              "auto t2 = std::chrono::system_clock::now();\n"
              "void stamp(struct timeval *tv)"
              " { gettimeofday(tv, 0); }\n")                   # flagged
        # bench/ is host-domain: wall clocks are allowed there.
        write(os.path.join(root, "bench", "timer.cc"),
              "auto t0 = std::chrono::steady_clock::now();\n")
        write(os.path.join(root, "src", "raw_rand.cc"),
              "double d = drand48();\n"                        # flagged
              "int r(unsigned *s) { return rand_r(s); }\n"     # flagged
              "void io(S &s) { s.setstate(failbit); }\n"  # member: fine
              "// zcomp-lint: allow(raw-rand)\n"
              "uint32_t a = arc4random();\n")            # suppressed
        write(os.path.join(root, "src", "unordered_iter.cc"),
              "std::unordered_map<const T *, Scan> memo;\n"
              "std::map<std::string, int> ordered;\n"
              "void probe() { auto it = memo.find(k); }\n"  # probe: ok
              "void leak() {\n"
              "    for (auto &kv : memo)\n"                    # flagged
              "        use(kv);\n"
              "    for (auto it = memo.begin(); it != memo.end();\n"
              "         ++it)\n"                # .begin(): flagged (l7)
              "        use(*it);\n"
              "    for (auto &kv : ordered)\n"             # ordered: ok
              "        use(kv);\n"
              "    // zcomp-lint: allow(unordered-iteration)\n"
              "    for (auto &kv : memo)\n"                # suppressed
              "        use(kv);\n"
              "}\n")

        write(os.path.join(root, "src", "proc_raw.cc"),
              "// fork() in a comment is fine\n"
              "int pid = fork();\n"                         # flagged
              "void run() { execv(path, argv); }\n"         # flagged
              "void reap() { waitpid(pid, &st, 0); }\n"     # flagged
              "void stop() { ::kill(pid, 9); }\n"           # flagged
              "void fine(Subprocess &p) { p.kill(); }\n"    # member ok
              "void also(Subprocess *p) { p->kill(); }\n"   # member ok
              "void forked() { workForked(); }\n"     # substring: fine
              "// zcomp-lint: allow(process-isolation)\n"
              "int pg = killpg(pgid, 9);\n")               # suppressed
        # The wrapper's own implementation is the sanctioned home.
        write(os.path.join(root, "src", "common", "subprocess.cc"),
              "pid_t child = fork();\n"
              "void go() { execve(p, a, e); }\n"
              "void reap() { waitpid(child, &st, 0); }\n")

        # Outside src/cachecomp/ the scheme-registration rule is
        # silent; registration there is scheme.cc's business.
        write(os.path.join(root, "src", "unregistered_elsewhere.cc"),
              "struct Outside : public CompressionScheme {};\n")
        write(os.path.join(root, "src", "cachecomp", "scheme_good.cc"),
              "struct Good : public CompressionScheme {};\n"
              "void hook() { registerScheme(good); }\n")
        write(os.path.join(root, "src", "cachecomp", "scheme_bad.cc"),
              "// `: public CompressionScheme` in a comment is fine\n"
              "struct Bad : public CompressionScheme {\n"    # flagged
              "};\n"
              "// zcomp-lint: allow(scheme-registration)\n"
              "struct Hidden : public CompressionScheme {};\n")

        findings = run_lint(root)
        got = {(f.rule, f.path, f.line) for f in findings}
        want = {
            ("cmake-registration", "src/orphan.cc", 1),
            ("header-guard", "src/bad_guard.hh", 1),
            ("header-guard", "src/no_guard.hh", 1),
            ("using-namespace", "src/leaky.hh", 2),
            ("stat-names", "src/dup_stats.cc", 3),
            ("raw-new", "src/raw_new.cc", 1),
            ("raw-new", "src/raw_new.cc", 2),
            ("rng", "src/bad_rng.cc", 2),
            ("rng", "src/bad_rng.cc", 3),
            ("catch-swallow", "src/catch_swallow.cc", 2),
            ("simd-isolation", "src/stray_intrin.cc", 2),
            ("simd-isolation", "src/stray_intrin.cc", 3),
            ("metrics-names", "src/metrics_probe.cc", 3),
            ("raw-mutex", "src/raw_mutex.cc", 1),
            ("raw-mutex", "src/raw_mutex.cc", 3),
            ("wall-clock", "src/wall_clock.cc", 1),
            ("wall-clock", "src/wall_clock.cc", 2),
            ("wall-clock", "src/wall_clock.cc", 6),
            ("raw-rand", "src/raw_rand.cc", 1),
            ("raw-rand", "src/raw_rand.cc", 2),
            ("unordered-iteration", "src/unordered_iter.cc", 5),
            ("unordered-iteration", "src/unordered_iter.cc", 7),
            ("scheme-registration", "src/cachecomp/scheme_bad.cc", 2),
            ("process-isolation", "src/proc_raw.cc", 2),
            ("process-isolation", "src/proc_raw.cc", 3),
            ("process-isolation", "src/proc_raw.cc", 4),
            ("process-isolation", "src/proc_raw.cc", 5),
        }
        ok = True
        for item in sorted(want - got):
            print("self-test: MISSING expected finding %s:%d [%s]"
                  % (item[1], item[2], item[0]))
            ok = False
        for item in sorted(got - want):
            print("self-test: UNEXPECTED finding %s:%d [%s]"
                  % (item[1], item[2], item[0]))
            ok = False
        print("self-test: %s (%d findings)"
              % ("PASS" if ok else "FAIL", len(findings)))
        return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: the tool's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture tests")
    ap.add_argument("--github", action="store_true",
                    default=bool(os.environ.get("GITHUB_ACTIONS")),
                    help="also emit ::error workflow annotations "
                         "(default when GITHUB_ACTIONS is set)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = run_lint(root)
    for f in findings:
        print(f)
        if args.github:
            print(f.github())
    if findings:
        print("zcomp_lint: %d finding(s)" % len(findings))
        return 1
    print("zcomp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
