/**
 * @file
 * zcomp_fuzz - differential fuzzer for the ZCOMP compress/expand path.
 *
 * Every round draws a random tensor configuration (element type x CCF x
 * header mode x vector count x sparsity), fills it with random lane
 * values, and round-trips it through four independent implementations
 * of the ZCOMP semantics:
 *
 *   1. a scalar reference built here from the Section 3 prose alone
 *      (manual little-endian lane walks, no shared helpers),
 *   2. the architectural emulator executing zcomps/zcompl ZcompInstrs
 *      (including the auto-incrementing pointer registers),
 *   3. CompressedWriter (stream compression + per-vector NNZ record),
 *   4. CompressedReader (stream expansion + decode validation).
 *
 * Any byte of disagreement - stream contents, pointer increments,
 * expanded vectors, NNZ counts - is a bug and fails the run with a
 * seed/round reproducer.
 *
 * Each round then injects stream corruption (truncation and header
 * bitflips, constrained to classes a self-describing stream can
 * provably detect - see corruptAndDecode()) and asserts the decoder
 * *always* raises DecodeError and bumps the zcomp.decode_errors
 * counter. Silent acceptance of corrupted input is a failure.
 *
 * Usage: zcomp_fuzz [--rounds N] [--seconds S] [--seed S] [--quiet]
 *                   [--backend scalar|simd|both]
 *   --rounds N   rounds to run (default 2500; 0 = no round limit)
 *   --seconds S  stop after S seconds (default 0 = no time limit)
 *   --seed S     base RNG seed (default 1)
 *   --quiet      suppress the periodic progress line
 *   --backend B  SIMD backend under test (default both). "both" runs
 *                every round's emulator and stream differentials under
 *                the scalar backend AND the best native one against
 *                the same scalar-built reference, so any divergence
 *                between the two implementations fails that round -
 *                this is the cross-backend bit-identity oracle the CI
 *                fuzz legs rely on. "simd" degrades to scalar (with a
 *                warning) when the host has no vector extension.
 */

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "isa/emulator.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

namespace {

constexpr Addr kBase = 0x1000;

/** One round's tensor configuration. */
struct RoundCfg
{
    ElemType t;
    Ccf ccf;
    bool sep;       //!< separate-header mode
    int nvec;
    double sparsity;
};

/**
 * Scalar reference streams, built lane by lane straight from the
 * paper's semantics with no code shared with the implementations
 * under test.
 */
struct Reference
{
    std::vector<uint8_t> interleaved;   //!< header+payload stream
    std::vector<uint8_t> payload;       //!< separate-mode data stream
    std::vector<uint8_t> headers;       //!< separate-mode header store
    std::vector<uint8_t> nnz;           //!< per-vector surviving lanes
    std::vector<size_t> hdrOffsets;     //!< per-vector header offset
                                        //!< (interleaved stream)
    std::vector<Vec512> expanded;       //!< expected zcompl results
};

/** Independent lane-drop decision: zero = all bytes zero, negative =
 * top bit of the most significant byte. */
bool
refKept(const uint8_t *lane, int eb, Ccf ccf)
{
    bool zero = true;
    for (int b = 0; b < eb; b++) {
        if (lane[b] != 0)
            zero = false;
    }
    if (ccf == Ccf::EQZ)
        return !zero;
    bool neg = (lane[eb - 1] & 0x80) != 0;
    return !zero && !neg;
}

Reference
buildReference(const RoundCfg &cfg, const std::vector<Vec512> &input)
{
    const int eb = elemBytes(cfg.t);
    const int lanes = lanesPerVec(cfg.t);
    const int hb = headerBytes(cfg.t);
    Reference ref;
    for (const Vec512 &v : input) {
        uint64_t header = 0;
        std::vector<uint8_t> packed;
        Vec512 exp = Vec512::zero();
        for (int i = 0; i < lanes; i++) {
            const uint8_t *lane = v.bytes + i * eb;
            if (!refKept(lane, eb, cfg.ccf))
                continue;
            header |= 1ULL << i;
            packed.insert(packed.end(), lane, lane + eb);
            std::memcpy(exp.bytes + i * eb, lane,
                        static_cast<size_t>(eb));
        }
        ref.hdrOffsets.push_back(ref.interleaved.size());
        for (int b = 0; b < hb; b++) {
            uint8_t byte =
                static_cast<uint8_t>(header >> (8 * b));
            ref.interleaved.push_back(byte);
            ref.headers.push_back(byte);
        }
        ref.interleaved.insert(ref.interleaved.end(), packed.begin(),
                               packed.end());
        ref.payload.insert(ref.payload.end(), packed.begin(),
                           packed.end());
        ref.nnz.push_back(static_cast<uint8_t>(packed.size() /
                                               static_cast<size_t>(eb)));
        ref.expanded.push_back(exp);
    }
    return ref;
}

uint64_t gSeed = 1;
uint64_t gRound = 0;

/** Fail the run with a reproducer; never returns. */
[[noreturn]] void
fail(const RoundCfg &cfg, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr,
                 "zcomp_fuzz FAILED: %s\n"
                 "  repro: --seed %llu (round %llu: %s %s %s nvec=%d "
                 "sparsity=%.2f)\n",
                 msg.c_str(), (unsigned long long)gSeed,
                 (unsigned long long)gRound, elemSuffix(cfg.t),
                 ccfName(cfg.ccf), cfg.sep ? "separate" : "interleaved",
                 cfg.nvec, cfg.sparsity);
    std::exit(1);
}

/** Random input vectors: each lane zeroed with probability sparsity,
 * otherwise filled with uniform random bytes (half of which have the
 * sign bit set, exercising LTEZ). */
std::vector<Vec512>
makeInput(const RoundCfg &cfg, Rng &rng)
{
    const int eb = elemBytes(cfg.t);
    const int lanes = lanesPerVec(cfg.t);
    std::vector<Vec512> input;
    for (int v = 0; v < cfg.nvec; v++) {
        Vec512 vec = Vec512::zero();
        for (int i = 0; i < lanes; i++) {
            if (rng.chance(cfg.sparsity))
                continue;
            for (int b = 0; b < eb; b++)
                vec.bytes[i * eb + b] =
                    static_cast<uint8_t>(rng.below(256));
        }
        input.push_back(vec);
    }
    return input;
}

/** Emulator differential: zcomps then zcompl against the reference,
 * including stream bytes and pointer increments. */
void
checkEmulator(const RoundCfg &cfg, const std::vector<Vec512> &input,
              const Reference &ref)
{
    const int hb = headerBytes(cfg.t);
    const size_t data_region =
        cfg.sep ? static_cast<size_t>(cfg.nvec) * 64
                : static_cast<size_t>(cfg.nvec) *
                      static_cast<size_t>(maxCompressedBytes(cfg.t));
    const size_t hdr_region =
        cfg.sep ? static_cast<size_t>(cfg.nvec * hb) : 0;
    std::vector<uint8_t> mem(data_region + hdr_region, 0xAA);
    ZcompEmulator emu(mem.data(), mem.size(), kBase);

    ZcompInstr store;
    store.isStore = true;
    store.sepHeader = cfg.sep;
    store.etype = cfg.t;
    store.ccf = cfg.ccf;
    store.vreg = 1;
    store.dataPtrReg = 2;
    store.hdrPtrReg = cfg.sep ? 3 : 0;

    emu.reg(2) = kBase;
    if (cfg.sep)
        emu.reg(3) = kBase + data_region;
    for (int v = 0; v < cfg.nvec; v++) {
        emu.vreg(1) = input[static_cast<size_t>(v)];
        ZcompResult r = emu.exec(store);
        if (r.nnz != ref.nnz[static_cast<size_t>(v)])
            fail(cfg, "emulator zcomps nnz %d != reference %d at "
                 "vector %d", r.nnz, ref.nnz[static_cast<size_t>(v)],
                 v);
    }
    const std::vector<uint8_t> &stream =
        cfg.sep ? ref.payload : ref.interleaved;
    if (emu.reg(2) != kBase + stream.size())
        fail(cfg, "emulator data pointer advanced %llu, reference "
             "stream is %zu bytes",
             (unsigned long long)(emu.reg(2) - kBase), stream.size());
    if (cfg.sep &&
        emu.reg(3) != kBase + data_region + ref.headers.size())
        fail(cfg, "emulator header pointer advanced %llu, reference "
             "store is %zu bytes",
             (unsigned long long)(emu.reg(3) - kBase - data_region),
             ref.headers.size());
    if (!stream.empty() &&
        std::memcmp(mem.data(), stream.data(), stream.size()) != 0)
        fail(cfg, "emulator compressed stream differs from reference");
    if (cfg.sep && std::memcmp(mem.data() + data_region,
                               ref.headers.data(),
                               ref.headers.size()) != 0)
        fail(cfg, "emulator header store differs from reference");

    ZcompInstr load;
    load.isStore = false;
    load.sepHeader = cfg.sep;
    load.etype = cfg.t;
    load.vreg = 4;
    load.dataPtrReg = 2;
    load.hdrPtrReg = cfg.sep ? 3 : 0;

    emu.reg(2) = kBase;
    if (cfg.sep)
        emu.reg(3) = kBase + data_region;
    for (int v = 0; v < cfg.nvec; v++) {
        ZcompResult r = emu.exec(load);
        if (r.nnz != ref.nnz[static_cast<size_t>(v)])
            fail(cfg, "emulator zcompl nnz %d != reference %d at "
                 "vector %d", r.nnz, ref.nnz[static_cast<size_t>(v)],
                 v);
        if (!(emu.vreg(4) == ref.expanded[static_cast<size_t>(v)]))
            fail(cfg, "emulator zcompl expansion differs from "
                 "reference at vector %d", v);
    }
    if (emu.reg(2) != kBase + stream.size())
        fail(cfg, "emulator zcompl data pointer did not return to the "
             "stream end");
}

/** Stream-layer differential: CompressedWriter bytes and NNZ record,
 * then CompressedReader expansion with every guard armed. */
void
checkStreams(const RoundCfg &cfg, const std::vector<Vec512> &input,
             const Reference &ref)
{
    const int hb = headerBytes(cfg.t);
    std::vector<uint8_t> data(
        static_cast<size_t>(cfg.nvec) *
            static_cast<size_t>(maxCompressedBytes(cfg.t)),
        0xAA);
    std::vector<uint8_t> hdrs(static_cast<size_t>(cfg.nvec * hb), 0xAA);

    std::vector<uint8_t> expect_stream;
    size_t written, hdr_written;
    std::vector<uint8_t> record;
    if (cfg.sep) {
        CompressedWriter w(data.data(), data.size(), hdrs.data(),
                           hdrs.size(), cfg.t, cfg.ccf);
        for (const Vec512 &v : input)
            w.put(v);
        written = w.bytesWritten();
        hdr_written = w.hdrBytesWritten();
        record = w.nnzRecord();
        expect_stream = ref.payload;
        if (hdr_written != ref.headers.size() ||
            std::memcmp(hdrs.data(), ref.headers.data(),
                        ref.headers.size()) != 0)
            fail(cfg, "writer header store differs from reference");
    } else {
        CompressedWriter w(data.data(), data.size(), cfg.t, cfg.ccf);
        for (const Vec512 &v : input)
            w.put(v);
        written = w.bytesWritten();
        hdr_written = 0;
        record = w.nnzRecord();
        expect_stream = ref.interleaved;
    }
    if (written != expect_stream.size() ||
        (!expect_stream.empty() &&
         std::memcmp(data.data(), expect_stream.data(),
                     expect_stream.size()) != 0))
        fail(cfg, "writer stream (%zu bytes) differs from reference "
             "(%zu bytes)", written, expect_stream.size());
    if (record != ref.nnz)
        fail(cfg, "writer NNZ record differs from reference");

    CompressedReader r =
        cfg.sep ? CompressedReader(data.data(), written, hdrs.data(),
                                   hdr_written, cfg.t)
                : CompressedReader(data.data(), written, cfg.t);
    r.expectNnzRecord(&record);
    for (int v = 0; v < cfg.nvec; v++) {
        Vec512 out = r.get();
        if (!(out == ref.expanded[static_cast<size_t>(v)]))
            fail(cfg, "reader expansion differs from reference at "
                 "vector %d", v);
    }
    r.finish();
}

/**
 * Corruption oracle: corrupt one copy of the reference stream, decode
 * it to the end, and require a DecodeError.
 *
 * The injected classes are exactly the ones a self-describing ZCOMP
 * stream can *always* detect, which is what makes the assertion sound
 * rather than probabilistic:
 *  - truncation: some vector's header or promised payload no longer
 *    fits the capacity (bounds check), or the loop consumes short and
 *    finish() sees the count mismatch;
 *  - a header bitflip in the *last* interleaved vector: the payload
 *    promise changes by one element, so the exactly-sized stream
 *    either overruns (bounds) or leaves trailing bytes (finish());
 *  - any header bitflip in separate mode: headers live out of band,
 *    so the cumulative payload promise shifts and the stream end
 *    can never line up again;
 *  - any header bitflip anywhere when the reader cross-checks the
 *    writer's NNZ record: the popcount disagrees at the flipped
 *    vector itself.
 * (A mid-stream interleaved flip *without* the NNZ record can
 * coincidentally resynchronize and is not deterministically
 * detectable by any decoder - the NNZ record is the defense, and the
 * oracle proves it works.)
 */
void
corruptAndDecode(const RoundCfg &cfg, const Reference &ref, Rng &rng)
{
    const int hb = headerBytes(cfg.t);
    std::vector<uint8_t> data =
        cfg.sep ? ref.payload : ref.interleaved;
    std::vector<uint8_t> hdrs = ref.headers;
    bool use_record = false;
    const char *what = "";

    int kind = static_cast<int>(rng.below(3));
    if (kind == 0) {
        // Truncation. An empty separate-mode payload (everything
        // compressed away) truncates the header store instead.
        std::vector<uint8_t> &victim =
            (cfg.sep && data.empty()) ? hdrs : data;
        size_t cut = 1 + rng.below(std::min<size_t>(16, victim.size()));
        victim.resize(victim.size() - cut);
        what = "truncation";
    } else if (kind == 1 && !cfg.sep) {
        // Interleaved: flip a header bit of the last vector.
        size_t off = ref.hdrOffsets.back() +
                     rng.below(static_cast<uint64_t>(hb));
        data[off] ^= static_cast<uint8_t>(1 << rng.below(8));
        what = "last-vector header bitflip";
    } else if (kind == 1) {
        // Separate: flip any header bit of any vector.
        size_t off = rng.below(hdrs.size());
        hdrs[off] ^= static_cast<uint8_t>(1 << rng.below(8));
        what = "header bitflip (separate store)";
    } else {
        // Any header bit anywhere, caught by the NNZ record.
        use_record = true;
        if (cfg.sep) {
            size_t off = rng.below(hdrs.size());
            hdrs[off] ^= static_cast<uint8_t>(1 << rng.below(8));
        } else {
            size_t v = rng.below(ref.hdrOffsets.size());
            size_t off = ref.hdrOffsets[v] +
                         rng.below(static_cast<uint64_t>(hb));
            data[off] ^= static_cast<uint8_t>(1 << rng.below(8));
        }
        what = "header bitflip vs NNZ record";
    }

    uint64_t errors_before = decodeErrorCount();
    bool detected = false;
    try {
        CompressedReader r =
            cfg.sep ? CompressedReader(data.data(), data.size(),
                                       hdrs.data(), hdrs.size(), cfg.t)
                    : CompressedReader(data.data(), data.size(), cfg.t);
        if (use_record)
            r.expectNnzRecord(&ref.nnz);
        for (int v = 0; v < cfg.nvec; v++)
            r.get();
        r.finish();
    } catch (const DecodeError &) {
        detected = true;
    }
    if (!detected)
        fail(cfg, "injected %s was NOT detected (silent corruption)",
             what);
    if (decodeErrorCount() <= errors_before)
        fail(cfg, "injected %s detected but zcomp.decode_errors did "
             "not advance", what);
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t rounds = 2500;
    double seconds = 0;
    bool quiet = false;
    std::string backend_mode = "both";
    for (int i = 1; i < argc; i++) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--rounds") == 0) {
            rounds = std::strtoull(value("--rounds"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--seconds") == 0) {
            seconds = std::strtod(value("--seconds"), nullptr);
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            gSeed = std::strtoull(value("--seed"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--backend") == 0) {
            backend_mode = value("--backend");
        } else {
            std::fprintf(stderr,
                         "usage: %s [--rounds N] [--seconds S] "
                         "[--seed S] [--quiet] "
                         "[--backend scalar|simd|both]\n",
                         argv[0]);
            return 1;
        }
    }

    // Backends each round's differentials run under. "both" makes
    // every round a cross-backend oracle: scalar and native must each
    // match the independent scalar-built reference byte for byte.
    std::vector<simd::Backend> backends;
    if (backend_mode == "scalar") {
        backends = {simd::Backend::Scalar};
    } else if (backend_mode == "simd") {
        if (simd::bestSupportedBackend() == simd::Backend::Scalar)
            warn("zcomp_fuzz: no native SIMD backend on this host; "
                 "--backend simd runs scalar");
        backends = {simd::bestSupportedBackend()};
    } else if (backend_mode == "both") {
        backends = {simd::Backend::Scalar};
        if (simd::bestSupportedBackend() != simd::Backend::Scalar)
            backends.push_back(simd::bestSupportedBackend());
    } else {
        std::fprintf(stderr,
                     "unknown --backend '%s' (scalar|simd|both)\n",
                     backend_mode.c_str());
        return 1;
    }
    if (rounds == 0 && seconds <= 0)
        rounds = 2500;

    Rng rng(gSeed);
    auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    static const double sparsities[] = {0.0,  0.1, 0.3, 0.5,
                                        0.62, 0.8, 0.95, 1.0};
    uint64_t vec_round_trips = 0;
    uint64_t corruptions = 0;
    for (gRound = 0;; gRound++) {
        if (rounds > 0 && gRound >= rounds)
            break;
        if (seconds > 0 && elapsed() >= seconds)
            break;

        RoundCfg cfg;
        cfg.t = static_cast<ElemType>(gRound %
                                      static_cast<uint64_t>(numElemTypes));
        cfg.ccf = rng.chance(0.5) ? Ccf::EQZ : Ccf::LTEZ;
        cfg.sep = rng.chance(0.5);
        cfg.nvec = 1 + static_cast<int>(rng.below(24));
        cfg.sparsity =
            sparsities[rng.below(sizeof(sparsities) /
                                 sizeof(sparsities[0]))];

        std::vector<Vec512> input = makeInput(cfg, rng);
        Reference ref = buildReference(cfg, input);
        for (simd::Backend b : backends) {
            simd::setBackend(b);
            checkEmulator(cfg, input, ref);
            checkStreams(cfg, input, ref);
        }
        vec_round_trips +=
            static_cast<uint64_t>(cfg.nvec) * backends.size();

        // Corruption trials alternate the active backend so the
        // decode-validation path is fuzzed under each one.
        simd::setBackend(backends[gRound % backends.size()]);
        for (int trial = 0; trial < 2; trial++) {
            corruptAndDecode(cfg, ref, rng);
            corruptions++;
        }

        if (!quiet && gRound > 0 && gRound % 1000 == 0)
            std::printf("... %llu rounds, %llu vector round-trips, "
                        "%llu corruptions detected\n",
                        (unsigned long long)gRound,
                        (unsigned long long)vec_round_trips,
                        (unsigned long long)corruptions);
    }

    std::printf("zcomp_fuzz OK: %llu rounds, %llu vector round-trips "
                "clean, %llu/%llu injected corruptions detected "
                "(%.1f s, seed %llu)\n",
                (unsigned long long)gRound,
                (unsigned long long)vec_round_trips,
                (unsigned long long)corruptions,
                (unsigned long long)corruptions, elapsed(),
                (unsigned long long)gSeed);
    return 0;
}
