#!/usr/bin/env python3
"""Robustness test for zcomp_inspect: malformed input must produce a
clean diagnostic and a non-zero exit, never a crash/signal, and valid
garbage data must still be analyzed.

Usage: test_inspect_robustness.py <path-to-zcomp_inspect>
"""

import json
import os
import random
import subprocess
import sys
import tempfile

failures = []


def run(args, **kw):
    return subprocess.run(args, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, timeout=60, **kw)


def check(name, proc, want_exit_zero, want_stderr=None):
    if proc.returncode < 0:
        failures.append("%s: killed by signal %d" %
                        (name, -proc.returncode))
        return
    ok = (proc.returncode == 0) == want_exit_zero
    if not ok:
        failures.append("%s: exit %d (wanted %s)" %
                        (name, proc.returncode,
                         "0" if want_exit_zero else "non-zero"))
        return
    if not want_exit_zero and not proc.stderr.strip():
        failures.append("%s: non-zero exit with no diagnostic" % name)
        return
    if want_stderr and want_stderr not in proc.stderr.decode(
            "utf-8", "replace"):
        failures.append("%s: stderr %r lacks %r" %
                        (name, proc.stderr[:200], want_stderr))
        return
    print("ok: %s" % name)


def main():
    if len(sys.argv) != 2:
        print("usage: %s <zcomp_inspect binary>" % sys.argv[0])
        return 2
    tool = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        empty = os.path.join(tmp, "empty.bin")
        open(empty, "wb").close()
        tiny = os.path.join(tmp, "tiny.bin")
        with open(tiny, "wb") as f:
            f.write(b"\x37" * 63)
        rng = random.Random(0x5EED)
        garbage = os.path.join(tmp, "garbage.bin")
        with open(garbage, "wb") as f:
            f.write(bytes(rng.randrange(256) for _ in range(4096)))

        check("no args", run([tool]), False, "usage")
        check("missing file",
              run([tool, os.path.join(tmp, "no.such.file")]), False,
              "cannot open")
        check("empty file", run([tool, empty]), False, "too small")
        check("sub-line file", run([tool, tiny]), False, "too small")

        # Arbitrary bytes >= one cache line are a valid fp32 dump: the
        # tool must analyze them and exit 0.
        check("garbage bytes analyze", run([tool, garbage]), True)
        jp = run([tool, "--json", garbage])
        check("garbage bytes --json", jp, True)
        if jp.returncode == 0:
            try:
                doc = json.loads(jp.stdout)
                assert doc["bytes"] == 4096
                assert "zcomp" in doc and "ratio" in doc["zcomp"]
                print("ok: --json output parses")
            except Exception as e:  # noqa: BLE001
                failures.append("--json output unparseable: %s" % e)

        check("synth valid", run([tool, "--synth", "0.5", "65536"]),
              True)
        check("synth sparsity junk", run([tool, "--synth", "abc"]),
              False, "[0, 1]")
        check("synth sparsity trailing",
              run([tool, "--synth", "0.5x"]), False, "[0, 1]")
        check("synth sparsity out of range",
              run([tool, "--synth", "1.5"]), False, "[0, 1]")
        check("synth bytes junk",
              run([tool, "--synth", "0.5", "12q"]), False, "integer")
        check("synth bytes negative",
              run([tool, "--synth", "0.5", "-64"]), False, "integer")
        check("synth bytes absurd",
              run([tool, "--synth", "0.5", "99999999999999"]), False,
              "integer")

        # --metrics validation, including the sweep-supervisor
        # "worker"/"crash" record kinds (--isolate-cells telemetry).
        def metrics_file(name, lines):
            p = os.path.join(tmp, name)
            with open(p, "w") as f:
                for rec in lines:
                    f.write(json.dumps(rec) + "\n")
            return p

        def rec(kind, **kw):
            base = {"schema": "zcomp-metrics-v1", "kind": kind,
                    "hostMs": 1.0}
            base.update(kw)
            return base

        good = metrics_file("good.jsonl", [
            rec("worker", event="spawn", worker=0, pid=100,
                cell="resnet-32 (training)", attempt=1),
            rec("worker", event="steal", worker=1, pid=101,
                cell="resnet-32 (training)", attempt=2),
            rec("crash", worker=0, cell="resnet-32 (training)",
                signal="SIGSEGV", reason="signal"),
            rec("worker", event="exit", worker=1, pid=101,
                cell="resnet-32 (training)", status="exit 0"),
            rec("progress", done=1, total=2, cached=0, failed=1,
                retried=0, cellsPerSec=0.5, etaSec=2.0),
        ])
        check("metrics worker records",
              run([tool, "--metrics", good]), True)
        jp = run([tool, "--json", "--metrics", good])
        check("metrics worker --json", jp, True)
        if jp.returncode == 0:
            try:
                doc = json.loads(jp.stdout)
                assert doc["workerEvents"] == 3, doc
                assert doc["crashes"] == 1, doc
                print("ok: metrics --json counts workers")
            except Exception as e:  # noqa: BLE001
                failures.append("metrics --json unparseable: %s" % e)

        check("metrics bad worker event",
              run([tool, "--metrics", metrics_file("bad-ev.jsonl", [
                  rec("worker", event="oops", worker=0, pid=1,
                      cell="x", attempt=1)])]),
              False, "unknown worker event")
        check("metrics worker missing pid",
              run([tool, "--metrics", metrics_file("bad-pid.jsonl", [
                  rec("worker", event="spawn", worker=0, cell="x",
                      attempt=1)])]),
              False, "field 'pid'")
        check("metrics exit missing status",
              run([tool, "--metrics", metrics_file("bad-st.jsonl", [
                  rec("worker", event="exit", worker=0, pid=1,
                      cell="x")])]),
              False, "field 'status'")
        check("metrics bad crash reason",
              run([tool, "--metrics", metrics_file("bad-why.jsonl", [
                  rec("crash", worker=0, cell="x", signal="SIGKILL",
                      reason="boredom")])]),
              False, "unknown crash reason")
        check("metrics crash missing signal",
              run([tool, "--metrics", metrics_file("bad-sig.jsonl", [
                  rec("crash", worker=0, cell="x",
                      reason="timeout")])]),
              False, "field 'signal'")

    if failures:
        for f in failures:
            print("FAIL: %s" % f, file=sys.stderr)
        return 1
    print("zcomp_inspect robustness: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
