#!/usr/bin/env python3
"""Robustness test for zcomp_inspect: malformed input must produce a
clean diagnostic and a non-zero exit, never a crash/signal, and valid
garbage data must still be analyzed.

Usage: test_inspect_robustness.py <path-to-zcomp_inspect>
"""

import json
import os
import random
import subprocess
import sys
import tempfile

failures = []


def run(args, **kw):
    return subprocess.run(args, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, timeout=60, **kw)


def check(name, proc, want_exit_zero, want_stderr=None):
    if proc.returncode < 0:
        failures.append("%s: killed by signal %d" %
                        (name, -proc.returncode))
        return
    ok = (proc.returncode == 0) == want_exit_zero
    if not ok:
        failures.append("%s: exit %d (wanted %s)" %
                        (name, proc.returncode,
                         "0" if want_exit_zero else "non-zero"))
        return
    if not want_exit_zero and not proc.stderr.strip():
        failures.append("%s: non-zero exit with no diagnostic" % name)
        return
    if want_stderr and want_stderr not in proc.stderr.decode(
            "utf-8", "replace"):
        failures.append("%s: stderr %r lacks %r" %
                        (name, proc.stderr[:200], want_stderr))
        return
    print("ok: %s" % name)


def main():
    if len(sys.argv) != 2:
        print("usage: %s <zcomp_inspect binary>" % sys.argv[0])
        return 2
    tool = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        empty = os.path.join(tmp, "empty.bin")
        open(empty, "wb").close()
        tiny = os.path.join(tmp, "tiny.bin")
        with open(tiny, "wb") as f:
            f.write(b"\x37" * 63)
        rng = random.Random(0x5EED)
        garbage = os.path.join(tmp, "garbage.bin")
        with open(garbage, "wb") as f:
            f.write(bytes(rng.randrange(256) for _ in range(4096)))

        check("no args", run([tool]), False, "usage")
        check("missing file",
              run([tool, os.path.join(tmp, "no.such.file")]), False,
              "cannot open")
        check("empty file", run([tool, empty]), False, "too small")
        check("sub-line file", run([tool, tiny]), False, "too small")

        # Arbitrary bytes >= one cache line are a valid fp32 dump: the
        # tool must analyze them and exit 0.
        check("garbage bytes analyze", run([tool, garbage]), True)
        jp = run([tool, "--json", garbage])
        check("garbage bytes --json", jp, True)
        if jp.returncode == 0:
            try:
                doc = json.loads(jp.stdout)
                assert doc["bytes"] == 4096
                assert "zcomp" in doc and "ratio" in doc["zcomp"]
                print("ok: --json output parses")
            except Exception as e:  # noqa: BLE001
                failures.append("--json output unparseable: %s" % e)

        check("synth valid", run([tool, "--synth", "0.5", "65536"]),
              True)
        check("synth sparsity junk", run([tool, "--synth", "abc"]),
              False, "[0, 1]")
        check("synth sparsity trailing",
              run([tool, "--synth", "0.5x"]), False, "[0, 1]")
        check("synth sparsity out of range",
              run([tool, "--synth", "1.5"]), False, "[0, 1]")
        check("synth bytes junk",
              run([tool, "--synth", "0.5", "12q"]), False, "integer")
        check("synth bytes negative",
              run([tool, "--synth", "0.5", "-64"]), False, "integer")
        check("synth bytes absurd",
              run([tool, "--synth", "0.5", "99999999999999"]), False,
              "integer")

    if failures:
        for f in failures:
            print("FAIL: %s" % f, file=sys.stderr)
        return 1
    print("zcomp_inspect robustness: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
