/**
 * @file
 * zcomp_inspect - a command-line compressibility explorer.
 *
 * Feeds a raw binary file (or a generated synthetic snapshot) through
 * the ZCOMP functional model and the FPC-D cache-compression model,
 * reporting per-block and aggregate compression statistics. Useful for
 * checking how a real feature-map dump would fare before committing to
 * interleaved headers (Section 4.1's compressibility question).
 *
 * Usage:
 *   zcomp_inspect <file>            analyze a raw fp32 binary dump
 *   zcomp_inspect --synth <sparsity> [bytes]
 *                                   analyze a generated snapshot
 *   zcomp_inspect --metrics <file>  validate a --metrics JSONL stream
 *
 * --json (anywhere on the command line) switches the report to a
 * machine-readable JSON document on stdout with the same numbers.
 *
 * The --metrics mode checks every record of a zcomp-metrics-v1
 * telemetry stream (bench --metrics out.jsonl): schema tag, record
 * kind, required fields and types, and that sample cycles are
 * strictly increasing within each (cell, policy) series. Any
 * violation is a one-line diagnostic naming the offending line and
 * a non-zero exit, so CI can gate on it.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cachecomp/cache_model.hh"
#include "common/json.hh"
#include "common/table.hh"
#include "workload/snapshot.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

namespace {

/** Strict numeric parsers: reject trailing junk and out-of-range
 *  values with a message instead of silently reading them as 0. */
double
parseSparsity(const char *text)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE || !(v >= 0) ||
        !(v <= 1)) {
        std::fprintf(stderr,
                     "zcomp_inspect: sparsity '%s' is not a number "
                     "in [0, 1]\n",
                     text);
        std::exit(1);
    }
    return v;
}

size_t
parseBytes(const char *text)
{
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(text, &end, 10);
    const long long max_bytes = 1ll << 32;
    if (end == text || *end != '\0' || errno == ERANGE || v < 64 ||
        v > max_bytes) {
        std::fprintf(stderr,
                     "zcomp_inspect: bytes '%s' is not an integer in "
                     "[64, %lld]\n",
                     text, max_bytes);
        std::exit(1);
    }
    return static_cast<size_t>(v);
}

std::vector<uint8_t>
readFile(const char *path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    auto size = static_cast<size_t>(in.tellg());
    size -= size % 64;      // line-align
    if (size == 0) {
        std::fprintf(stderr, "%s: too small (need >= 64 bytes)\n",
                     path);
        std::exit(1);
    }
    std::vector<uint8_t> bytes(size);
    in.seekg(0);
    if (!in.read(reinterpret_cast<char *>(bytes.data()),
                 static_cast<std::streamsize>(size))) {
        std::fprintf(stderr, "%s: short read (wanted %zu bytes)\n",
                     path, size);
        std::exit(1);
    }
    return bytes;
}

std::vector<uint8_t>
makeSynthetic(double sparsity, size_t bytes)
{
    SnapshotParams p;
    p.sparsity = sparsity;
    auto floats = makeActivations(bytes / 4, p, 0x5eed);
    std::vector<uint8_t> out(floats.size() * 4);
    std::memcpy(out.data(), floats.data(), out.size());
    return out;
}

/** Compose "<path>:<line>: <what>" for metrics-stream diagnostics. */
std::runtime_error
metricsError(const std::string &path, size_t line,
             const std::string &what)
{
    return std::runtime_error(path + ":" + std::to_string(line) +
                              ": " + what);
}

/** Fetch a required member of a known Json type, or throw. */
const Json &
requireField(const Json &rec, const char *key, const char *type,
             const std::string &path, size_t line)
{
    const Json *p = rec.find(key);
    bool ok = p != nullptr;
    if (ok) {
        if (std::strcmp(type, "string") == 0)
            ok = p->isString();
        else if (std::strcmp(type, "number") == 0)
            ok = p->isNumber();
        else if (std::strcmp(type, "object") == 0)
            ok = p->isObject();
    }
    if (!ok)
        throw metricsError(path, line,
                           std::string("record needs ") + type +
                               " field '" + key + "'");
    return *p;
}

/**
 * Validate a zcomp-metrics-v1 JSONL stream (see common/metrics.hh
 * for the writer). Prints a summary on success; throws on the first
 * malformed record, which main() turns into exit 1.
 */
int
validateMetrics(const char *file, bool json_mode)
{
    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file);
        std::exit(1);
    }
    const std::string path = file;

    // Last sample cycle per (cell, policy) series, for monotonicity.
    std::map<std::pair<std::string, std::string>, double> lastCycle;
    std::map<std::pair<std::string, std::string>, uint64_t> perSeries;
    uint64_t samples = 0, progress = 0, drains = 0;
    uint64_t workerEvents = 0, crashes = 0;
    double maxCycle = 0;

    std::string text;
    size_t lineno = 0;
    while (std::getline(in, text)) {
        lineno++;
        if (text.empty())
            throw metricsError(path, lineno, "empty line");
        std::string err;
        Json rec = Json::parse(text, &err);
        if (!err.empty())
            throw metricsError(path, lineno, "bad JSON: " + err);
        if (!rec.isObject())
            throw metricsError(path, lineno, "record is not an object");

        const Json &schema =
            requireField(rec, "schema", "string", path, lineno);
        if (schema.asString() != "zcomp-metrics-v1")
            throw metricsError(path, lineno,
                               "unknown schema '" + schema.asString() +
                                   "' (want zcomp-metrics-v1)");
        const Json &kind =
            requireField(rec, "kind", "string", path, lineno);
        requireField(rec, "hostMs", "number", path, lineno);

        if (kind.asString() == "sample") {
            samples++;
            const std::string cell =
                requireField(rec, "cell", "string", path, lineno)
                    .asString();
            const std::string policy =
                requireField(rec, "policy", "string", path, lineno)
                    .asString();
            double cycle =
                requireField(rec, "cycle", "number", path, lineno)
                    .asDouble();
            double window =
                requireField(rec, "window", "number", path, lineno)
                    .asDouble();
            if (!(window > 0))
                throw metricsError(path, lineno,
                                   "sample window must be > 0");
            const Json &counters =
                requireField(rec, "counters", "object", path, lineno);
            for (const auto &kv : counters.members())
                if (!kv.second.isNumber())
                    throw metricsError(path, lineno,
                                       "counter '" + kv.first +
                                           "' is not a number");
            const Json &derived =
                requireField(rec, "derived", "object", path, lineno);
            for (const auto &kv : derived.members())
                if (!kv.second.isNumber())
                    throw metricsError(path, lineno,
                                       "derived '" + kv.first +
                                           "' is not a number");
            if (rec.find("drain"))
                drains++;

            auto key = std::make_pair(cell, policy);
            auto it = lastCycle.find(key);
            if (it != lastCycle.end() && !(cycle > it->second))
                throw metricsError(
                    path, lineno,
                    "sample cycle " + std::to_string(cycle) +
                        " not after " + std::to_string(it->second) +
                        " for (" + cell + ", " + policy + ")");
            lastCycle[key] = cycle;
            perSeries[key]++;
            if (cycle > maxCycle)
                maxCycle = cycle;
        } else if (kind.asString() == "progress") {
            progress++;
            for (const char *k :
                 {"done", "total", "cached", "failed", "retried",
                  "cellsPerSec", "etaSec"})
                requireField(rec, k, "number", path, lineno);
            double done =
                rec.find("done")->asDouble();
            double total = rec.find("total")->asDouble();
            if (done > total)
                throw metricsError(path, lineno,
                                   "progress done exceeds total");
        } else if (kind.asString() == "worker") {
            // Sweep-supervisor lifecycle (--isolate-cells): a worker
            // process was spawned, work-stolen or reaped.
            workerEvents++;
            const std::string event =
                requireField(rec, "event", "string", path, lineno)
                    .asString();
            if (event != "spawn" && event != "steal" &&
                event != "exit")
                throw metricsError(path, lineno,
                                   "unknown worker event '" + event +
                                       "'");
            requireField(rec, "worker", "number", path, lineno);
            requireField(rec, "pid", "number", path, lineno);
            requireField(rec, "cell", "string", path, lineno);
            if (event == "exit")
                requireField(rec, "status", "string", path, lineno);
            else
                requireField(rec, "attempt", "number", path, lineno);
        } else if (kind.asString() == "crash") {
            // Supervisor-domain cell failure: signal death, hard
            // timeout or heartbeat loss.
            crashes++;
            requireField(rec, "worker", "number", path, lineno);
            requireField(rec, "cell", "string", path, lineno);
            requireField(rec, "signal", "string", path, lineno);
            const std::string reason =
                requireField(rec, "reason", "string", path, lineno)
                    .asString();
            if (reason != "signal" && reason != "timeout" &&
                reason != "heartbeat")
                throw metricsError(path, lineno,
                                   "unknown crash reason '" + reason +
                                       "'");
        } else {
            throw metricsError(path, lineno,
                               "unknown kind '" + kind.asString() +
                                   "'");
        }
    }
    if (lineno == 0)
        throw std::runtime_error(path + ": no records");

    if (json_mode) {
        Json doc = Json::object();
        doc["file"] = path;
        doc["records"] = lineno;
        doc["samples"] = samples;
        doc["progress"] = progress;
        doc["workerEvents"] = workerEvents;
        doc["crashes"] = crashes;
        doc["drains"] = drains;
        doc["series"] = perSeries.size();
        doc["maxCycle"] = maxCycle;
        std::printf("%s\n", doc.dump(2).c_str());
        return 0;
    }

    std::printf("%s: %zu records OK\n", file, (size_t)lineno);
    std::printf("samples  : %llu (%llu drain) across %zu "
                "(cell, policy) series\n",
                (unsigned long long)samples, (unsigned long long)drains,
                perSeries.size());
    std::printf("progress : %llu records\n",
                (unsigned long long)progress);
    if (workerEvents || crashes)
        std::printf("workers  : %llu events, %llu crashes\n",
                    (unsigned long long)workerEvents,
                    (unsigned long long)crashes);
    std::printf("max cycle: %.0f\n", maxCycle);
    return 0;
}

int runInspect(int argc, char **argv);

} // namespace

int
main(int argc, char **argv)
{
    // Malformed inputs must come back as a clean diagnostic and a
    // non-zero exit, never as an unhandled exception or a crash.
    try {
        return runInspect(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "zcomp_inspect: %s\n", e.what());
        return 1;
    }
}

namespace {

int
runInspect(int argc, char **argv)
{
    // Pull --json out first so it can appear anywhere.
    bool json_mode = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--json") == 0)
            json_mode = true;
        else
            args.push_back(argv[i]);
    }
    int nargs = static_cast<int>(args.size());

    std::vector<uint8_t> data;
    std::string source;
    if (nargs == 3 && std::string(args[1]) == "--metrics") {
        return validateMetrics(args[2], json_mode);
    } else if (nargs >= 3 && std::string(args[1]) == "--synth") {
        double sparsity = parseSparsity(args[2]);
        size_t bytes = nargs >= 4 ? parseBytes(args[3]) : (1u << 20);
        bytes -= bytes % 64;
        data = makeSynthetic(sparsity, bytes);
        source = "synthetic snapshot";
    } else if (nargs == 2) {
        data = readFile(args[1]);
        source = args[1];
    } else {
        std::fprintf(stderr,
                     "usage: %s [--json] <file> | "
                     "--synth <sparsity> [bytes] | "
                     "--metrics <file.jsonl>\n",
                     argv[0]);
        return 1;
    }

    const size_t n = data.size() / 4;

    // Whole-buffer ZCOMP statistics (interleaved fp32 headers).
    std::vector<uint8_t> dst(data.size() + (n / 16 + 1) * 2 + 64);
    const float *floats = reinterpret_cast<const float *>(data.data());
    size_t vec_elems = n - n % 16;
    StreamStats s = compressBufferPs(floats, vec_elems, dst.data(),
                                     dst.size(), Ccf::EQZ);

    // Cache-compression comparison on the same data.
    CompRatios r = analyzeSnapshot(data.data(),
                                   data.size() - data.size() % 64);

    // Per-block (1 MiB) profile: sparsity and ratio across the file.
    const size_t block = 1u << 20;
    struct BlockStat
    {
        size_t offset;
        double sparsity;
        double ratio;
    };
    std::vector<BlockStat> blocks;
    if (data.size() > 2 * block) {
        for (size_t off = 0; off + block <= data.size();
             off += block) {
            const float *bf =
                reinterpret_cast<const float *>(data.data() + off);
            size_t bn = block / 4;
            std::vector<uint8_t> bd(block + (bn / 16) * 2 + 64);
            StreamStats bs = compressBufferPs(bf, bn, bd.data(),
                                              bd.size(), Ccf::EQZ);
            blocks.push_back(
                {off, bs.sparsity(ElemType::F32), bs.ratio()});
        }
    }

    if (json_mode) {
        Json doc = Json::object();
        doc["source"] = source;
        doc["bytes"] = data.size();
        doc["elements"] = n;

        Json &zc = doc["zcomp"];
        zc = Json::object();
        zc["sparsity"] = s.sparsity(ElemType::F32);
        zc["ratio"] = s.ratio();
        zc["originalBytes"] = s.originalBytes();
        zc["totalBytes"] = s.totalBytes();
        zc["headerBytes"] = s.headerBytes;
        zc["fitsOriginalAlloc"] = s.totalBytes() <= s.originalBytes();

        Json &cc = doc["cachecomp"];
        cc = Json::object();
        cc["limitCC"] = r.limitCC;
        cc["twoTagCC"] = r.twoTagCC;

        Json blk = Json::array();
        for (const BlockStat &b : blocks) {
            Json e = Json::object();
            e["offset"] = b.offset;
            e["sparsity"] = b.sparsity;
            e["ratio"] = b.ratio;
            blk.push(std::move(e));
        }
        doc["perMiB"] = std::move(blk);
        std::printf("%s\n", doc.dump(2).c_str());
        return 0;
    }

    std::printf("source : %s (%zu bytes, %zu fp32 elements)\n",
                source.c_str(), data.size(), n);
    std::printf("zero sparsity      : %5.1f%%\n",
                s.sparsity(ElemType::F32) * 100);
    std::printf("zcomp ratio        : %5.2fx (%llu -> %llu bytes, "
                "%llu header bytes)\n",
                s.ratio(), (unsigned long long)s.originalBytes(),
                (unsigned long long)s.totalBytes(),
                (unsigned long long)s.headerBytes);
    std::printf("fits orig. alloc.  : %s (needs >= 3.125%% "
                "compressibility)\n",
                s.totalBytes() <= s.originalBytes() ? "yes" : "NO");
    std::printf("FPC-D LimitCC ratio: %5.2fx\n", r.limitCC);
    std::printf("FPC-D TwoTagCC     : %5.2fx\n", r.twoTagCC);

    if (!blocks.empty()) {
        Table t("per-MiB profile");
        t.setHeader({"offset", "sparsity", "zcomp ratio"});
        for (const BlockStat &b : blocks) {
            t.addRow({Table::fmtBytes(static_cast<double>(b.offset)),
                      Table::fmtPct(b.sparsity),
                      Table::fmt(b.ratio, 2) + "x"});
        }
        t.print(std::cout);
    }
    return 0;
}

} // namespace
