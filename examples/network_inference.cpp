/**
 * @file
 * End-to-end inference simulation: run AlexNet on the Table 1
 * machine under all three cross-layer I/O policies and show where
 * ZCOMP saves traffic, layer by layer.
 */

#include <cstdio>

#include "dnn/models.hh"
#include "sim/network_sim.hh"

using namespace zcomp;

int
main()
{
    ArchConfig cfg;
    ExecContext ctx(cfg);

    ModelOptions opt;
    opt.batch = 1;
    auto net = buildModel(ModelId::AlexNet, ctx.vs(), opt);
    net->build(/*training=*/false, 5);

    Rng rng(6);
    net->fillSyntheticInput(rng);
    net->forward();    // functional pass: real activation sparsity

    std::printf("alexnet inference, batch %d, %s\n", opt.batch,
                cfg.summary().c_str());

    NetworkSim sim(ctx, *net);
    NetworkSimResult results[numIoPolicies];
    for (int p = 0; p < numIoPolicies; p++) {
        NetworkSimConfig scfg;
        scfg.policy = static_cast<IoPolicy>(p);
        results[p] = sim.run(scfg);
        std::printf("%-13s total cycles=%12.0f  traffic=%8.2f MiB  "
                    "(%.3fx vs baseline)\n",
                    ioPolicyName(scfg.policy), results[p].cycles(),
                    static_cast<double>(results[p].trafficBytes()) /
                        (1 << 20),
                    results[0].cycles() / results[p].cycles());
    }

    std::printf("\nper-layer traffic, uncompressed vs zcomp:\n");
    const auto &base = results[0].layers;
    const auto &zc = results[2].layers;
    for (size_t i = 0; i < base.size() && i < zc.size(); i++) {
        double b = static_cast<double>(base[i].stats.traffic
                                           .totalBytes());
        double z = static_cast<double>(zc[i].stats.traffic
                                           .totalBytes());
        if (b < (128 << 10))
            continue;   // skip tiny passes
        std::printf("  %-16s %8.2f -> %8.2f MiB  (%+.0f%%)\n",
                    base[i].name.c_str(), b / (1 << 20),
                    z / (1 << 20), (z / b - 1.0) * 100.0);
    }
    return 0;
}
