/**
 * @file
 * Simulate a ReLU activation layer over one DeepBench tensor on the
 * Table 1 machine, comparing the three implementations of Figure 12:
 * the uncompressed AVX512 baseline, avx512-comp, and ZCOMP.
 */

#include <cstdio>

#include "sim/kernels.hh"
#include "workload/deepbench.hh"

using namespace zcomp;

int
main(int argc, char **argv)
{
    // Pick a conv-train shape near the L3 cache-fit cliff by default.
    size_t shape_idx = 3;
    if (argc > 1)
        shape_idx = static_cast<size_t>(std::atoi(argv[1])) % 44;
    const DeepBenchShape &shape = deepBenchShapes()[shape_idx];

    std::printf("shape: %s (%s, %.1f MiB, %.0f%% sparse)\n",
                shape.name.c_str(), benchSuiteName(shape.suite),
                static_cast<double>(shape.bytes()) / (1 << 20),
                shape.sparsity * 100);

    ArchConfig cfg;
    std::printf("machine: %s\n\n", cfg.summary().c_str());

    double base_cycles = 0;
    for (int i = 0; i < numReluImpls; i++) {
        ExecContext ctx(cfg);
        ReluExperimentConfig rc;
        rc.elems = shape.elems;
        rc.sparsity = shape.sparsity;
        ReluExperimentResult r =
            runReluExperiment(ctx, static_cast<ReluImpl>(i), rc);
        RunStats total = r.total();
        if (i == 0)
            base_cycles = total.cycles;
        std::printf("%-12s cycles=%12.0f  core-cache=%8.2f MiB  "
                    "DRAM=%8.2f MiB  speedup=%.2fx\n",
                    reluImplName(static_cast<ReluImpl>(i)),
                    total.cycles,
                    static_cast<double>(total.traffic.coreL1Bytes) /
                        (1 << 20),
                    static_cast<double>(total.traffic.l3DramBytes) /
                        (1 << 20),
                    base_cycles / total.cycles);
        if (i == static_cast<int>(ReluImpl::Zcomp)) {
            std::printf("             output compressed %.2fx "
                        "(%.0f%% sparse after fused ReLU)\n",
                        r.yStream.ratio(),
                        r.yStream.sparsity(ElemType::F32) * 100);
        }
    }
    std::printf("\nusage: %s [shape-index 0..43]\n", argv[0]);
    return 0;
}
