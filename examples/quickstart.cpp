/**
 * @file
 * Quickstart: compress a sparse feature map with the ZCOMP intrinsics
 * and expand it back, verifying the round trip - the Figure 8/9 usage
 * pattern, pure software API, no simulator involved.
 */

#include <cstdio>
#include <vector>

#include "workload/snapshot.hh"
#include "zcomp/stream.hh"

using namespace zcomp;

int
main()
{
    // A 1 MiB feature map with 53% zeros, like a mid-network
    // activation snapshot.
    const size_t n = 256 * 1024;
    SnapshotParams params;
    params.sparsity = 0.53;
    std::vector<float> feature_map = makeActivations(n, params, 7);

    // Compress it vector-by-vector into the *original-size*
    // allocation: interleaved headers fit as long as the data is at
    // least ~3.1% compressible (Section 4.1 of the paper).
    std::vector<uint8_t> region(n * sizeof(float));
    StreamStats stats = compressBufferPs(feature_map.data(), n,
                                         region.data(), region.size(),
                                         Ccf::EQZ);

    std::printf("feature map      : %zu elements (%zu KiB)\n", n,
                n * 4 / 1024);
    std::printf("sparsity         : %.1f%%\n",
                stats.sparsity(ElemType::F32) * 100.0);
    std::printf("compressed size  : %llu KiB (headers: %llu KiB)\n",
                (unsigned long long)(stats.totalBytes() / 1024),
                (unsigned long long)(stats.headerBytes / 1024));
    std::printf("compression ratio: %.2fx\n", stats.ratio());

    // Expand and verify.
    std::vector<float> out(n);
    expandBufferPs(region.data(), region.size(), out.data(), n);
    for (size_t i = 0; i < n; i++) {
        if (out[i] != feature_map[i]) {
            std::printf("MISMATCH at %zu\n", i);
            return 1;
        }
    }
    std::printf("round trip       : verified, bit-exact\n");

    // The same API can fuse a ReLU into the compression: LTEZ drops
    // negative values so they expand back as zeros.
    StreamStats relu_stats = compressBufferPs(
        feature_map.data(), n, region.data(), region.size(),
        Ccf::LTEZ);
    std::printf("fused-ReLU ratio : %.2fx (LTEZ also drops %llu "
                "negative values)\n",
                relu_stats.ratio(),
                (unsigned long long)(stats.nnz - relu_stats.nnz));
    return 0;
}
