/**
 * @file
 * Toolchain-facing demo: assemble ZCOMP instructions from text,
 * inspect their binary encodings, decode them back, and execute one
 * functionally on a sample vector (reproducing the worked example of
 * the paper's Figure 4).
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "isa/zcomp_isa.hh"

using namespace zcomp;

int
main()
{
    const char *program[] = {
        "zcomps.i.ps [r2], zmm1, ltez    ; fused ReLU compress-store",
        "zcompl.i.ps zmm1, [r2]          ; load-expand",
        "zcomps.s.b [r4], zmm9, [r5], eqz",
        "zcompl.s.pd zmm17, [r8], [r9]",
    };

    std::printf("assembling:\n");
    for (const char *line : program) {
        auto instr = assemble(line);
        if (!instr) {
            std::printf("  %-40s -> syntax error\n", line);
            continue;
        }
        auto word = encode(*instr);
        std::printf("  %-40s -> 0x%08X -> %s\n", line, *word,
                    disassemble(*decode(*word)).c_str());
    }

    // Figure 4 worked example: 6 non-zero fp32 lanes {2,3,4,8,12,15}
    // compress to a 0x911C header + 24 payload bytes = 26 bytes,
    // advancing reg2 from 0x1000 to 0x101A.
    std::printf("\nfigure 4 worked example:\n");
    Vec512 v = Vec512::zero();
    for (int lane : {2, 3, 4, 8, 12, 15})
        v.setLane<float>(lane, static_cast<float>(lane) + 1.0f);
    uint8_t buf[66];
    ZcompResult r = zcompsInterleaved(v, ElemType::F32, Ccf::EQZ, buf);
    std::printf("  header = 0x%04llX (paper: 0x911C)\n",
                (unsigned long long)r.header);
    std::printf("  NNZ    = %d, bytes written = %d (paper: 26)\n",
                r.nnz, r.totalBytes);
    std::printf("  reg2   : 0x1000 -> 0x%llX (paper: 0x101A)\n",
                0x1000ULL + static_cast<unsigned long long>(
                                r.totalBytes));
    return 0;
}
