/**
 * @file
 * End-to-end training-step simulation: one SGD step of ResNet-32
 * (CIFAR) at batch 64, with the Figure 2-style cycle breakdown and
 * the ZCOMP training benefit.
 */

#include <cstdio>
#include <vector>

#include "dnn/models.hh"
#include "sim/network_sim.hh"

using namespace zcomp;

int
main()
{
    ArchConfig cfg;
    ExecContext ctx(cfg);

    ModelOptions opt;
    opt.batch = 64;
    auto net = buildModel(ModelId::Resnet32, ctx.vs(), opt);
    net->build(/*training=*/true, 9);

    // A real functional train step: forward, loss, backward.
    Rng rng(10);
    net->fillSyntheticInput(rng);
    net->forward();
    std::vector<int> labels(static_cast<size_t>(opt.batch));
    for (auto &l : labels)
        l = static_cast<int>(rng.below(100));
    double loss = net->lossAndBackward(labels);
    net->sgdStep(0.01f);

    std::printf("resnet-32 training step, batch %d, loss %.3f\n",
                opt.batch, loss);
    std::printf("machine: %s\n\n", cfg.summary().c_str());

    Network::Footprint f = net->footprint();
    std::printf("footprint: inputs %.1f MiB | weights %.1f MiB | "
                "feature maps %.1f MiB | gradient maps %.1f MiB\n\n",
                static_cast<double>(f.inputBytes) / (1 << 20),
                static_cast<double>(f.weightBytes) / (1 << 20),
                static_cast<double>(f.featureMapBytes) / (1 << 20),
                static_cast<double>(f.gradientMapBytes) / (1 << 20));

    NetworkSim sim(ctx, *net);
    double base_cycles = 0;
    for (int p = 0; p < numIoPolicies; p++) {
        NetworkSimConfig scfg;
        scfg.policy = static_cast<IoPolicy>(p);
        NetworkSimResult r = sim.run(scfg);
        if (p == 0)
            base_cycles = r.cycles();
        const CycleBreakdown &bd = r.total.breakdown;
        double total = bd.total();
        std::printf("%-13s cycles=%12.0f speedup=%.3fx | breakdown: "
                    "compute %.0f%%, memory %.0f%%, sync %.0f%%\n",
                    ioPolicyName(scfg.policy), r.cycles(),
                    base_cycles / r.cycles(),
                    bd.compute / total * 100, bd.memory / total * 100,
                    bd.sync / total * 100);
    }
    return 0;
}
